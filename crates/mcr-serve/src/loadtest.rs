//! The loadtest harness: replays a configurable volume of mixed
//! run/sweep/campaign submissions (deterministically generated from a
//! seed, with seeded arrival jitter) against a server, a dispatcher
//! fleet, or a self-hosted loopback server, and reports shed/latency
//! accounting built from the same `mcr-telemetry` primitives the
//! server itself uses.
//!
//! Submissions draw from small template pools on purpose: repeated
//! configs exercise the memo store (warm submissions answer in
//! microseconds), so the harness measures the *service*, not the
//! simulator. Every submission is classified into exactly one outcome
//! — ok, a typed shed (413/429/503), timeout, error, or transport
//! failure after the retry budget — so the accounting always balances:
//! outcomes sum to submissions, and a `failed` count of zero proves no
//! submission was lost even under fault injection.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use mcr_telemetry::LatencyHistogram;
use sim_json::Json;
use sim_rng::SmallRng;

use crate::client::{Client, ClientError, ClientOptions};
use crate::dispatch::{DispatchConfig, Dispatcher};
use crate::netchaos::{ChaosPlan, ChaosStats, NetChaos};
use crate::protocol::{CODE_DRAINING, CODE_QUEUE_FULL, CODE_TOO_LARGE};
use crate::server::{ServeConfig, Server};

/// Read-poll interval while waiting for a reply.
const REPLY_POLL: Duration = Duration::from_millis(250);

/// Per-submission overall reply budget before the attempt counts as a
/// transport failure (and is retried).
const ATTEMPT_BUDGET: Duration = Duration::from_secs(60);

/// Workload pool the generator draws from (small, so the memo tier
/// gets hits).
const WORKLOADS: [&str; 4] = ["libq", "stream", "comm1", "mummer"];

/// Mode pool (all Table-1-valid).
const MODES: [&str; 3] = ["1/2x/100", "2/2x/100", "4/4x/100"];

/// Loadtest tuning knobs.
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Total submissions to replay.
    pub submissions: usize,
    /// Concurrent submitter threads.
    pub concurrency: usize,
    /// Seed for the generator, arrival jitter, and seeded chaos.
    pub seed: u64,
    /// Trace length of generated jobs (memory operations per core).
    pub len: usize,
    /// Deadline attached to every submission (`None`: unbounded).
    pub deadline_ms: Option<u64>,
    /// Transport retries per submission before it counts as `failed`.
    pub max_retries: u32,
    /// Upper bound of the seeded arrival jitter before each submission.
    pub arrival_jitter_ms: u64,
    /// Fault probability for the chaos phase (`0`: clean phase only).
    pub chaos_rate: f64,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        LoadtestConfig {
            submissions: 40,
            concurrency: 4,
            seed: 7,
            len: 2_000,
            deadline_ms: None,
            max_retries: 6,
            arrival_jitter_ms: 5,
            chaos_rate: 0.0,
        }
    }
}

/// Where the submissions go.
#[derive(Debug, Clone)]
pub enum LoadTarget {
    /// One server address, submitted to directly.
    Addr(String),
    /// A backend fleet, submitted through an in-process shard
    /// dispatcher.
    Backends(Vec<String>),
}

/// Outcome accounting for one phase (clean or chaos) of a loadtest.
#[derive(Debug, Clone, Default)]
pub struct PhaseReport {
    /// Submissions answered `ok`.
    pub ok: u64,
    /// Submissions shed with 429.
    pub shed_queue_full: u64,
    /// Submissions shed with 503.
    pub shed_draining: u64,
    /// Submissions shed with 413.
    pub shed_too_large: u64,
    /// Submissions answered `timeout`.
    pub timeouts: u64,
    /// Submissions answered `error` (a final, typed reply).
    pub errors: u64,
    /// Submissions lost: transport retries exhausted without any reply.
    pub failed: u64,
    /// Transport retries spent across the phase.
    pub retries: u64,
    /// Per-submission wall clock (first attempt to final outcome), ms.
    pub latency_ms: LatencyHistogram,
    /// Whole-phase wall clock, ms.
    pub wall_ms: u64,
}

impl PhaseReport {
    /// Sum of all outcome classes — must equal the submission count.
    pub fn total(&self) -> u64 {
        self.ok
            + self.shed_queue_full
            + self.shed_draining
            + self.shed_too_large
            + self.timeouts
            + self.errors
            + self.failed
    }

    /// JSON view (histogram shape matches `ServeTelemetry`).
    pub fn to_json(&self) -> Json {
        let pct = |v: Option<u64>| v.map(Json::from).unwrap_or(Json::Null);
        Json::obj([
            ("ok", Json::from(self.ok)),
            (
                "shed",
                Json::obj([
                    ("queue_full", Json::from(self.shed_queue_full)),
                    ("draining", Json::from(self.shed_draining)),
                    ("too_large", Json::from(self.shed_too_large)),
                ]),
            ),
            ("timeouts", Json::from(self.timeouts)),
            ("errors", Json::from(self.errors)),
            ("failed", Json::from(self.failed)),
            ("retries", Json::from(self.retries)),
            (
                "latency_ms",
                Json::obj([
                    ("count", Json::from(self.latency_ms.count())),
                    ("sum", Json::from(self.latency_ms.sum())),
                    ("p50", pct(self.latency_ms.p50())),
                    ("p95", pct(self.latency_ms.p95())),
                    ("max", pct(self.latency_ms.max())),
                ]),
            ),
            ("wall_ms", Json::from(self.wall_ms)),
        ])
    }
}

/// Everything one loadtest run produced.
#[derive(Debug, Clone)]
pub struct LoadtestReport {
    /// Accounting of the clean phase.
    pub clean: PhaseReport,
    /// Accounting of the chaos phase (`chaos_rate > 0` only).
    pub chaos: Option<PhaseReport>,
    /// Proxy-side fault counts of the chaos phase.
    pub chaos_stats: Option<ChaosStats>,
    /// The target server's own `stats` answer after both phases (only
    /// when the harness could reach one — always in loopback mode).
    pub server_stats: Option<Json>,
}

impl LoadtestReport {
    /// The `BENCH_serve.json` document.
    pub fn to_json(&self, cfg: &LoadtestConfig) -> Json {
        let mut members = vec![
            (
                "submissions".to_string(),
                Json::from(cfg.submissions as u64),
            ),
            (
                "concurrency".to_string(),
                Json::from(cfg.concurrency as u64),
            ),
            ("seed".to_string(), Json::from(cfg.seed)),
            ("len".to_string(), Json::from(cfg.len as u64)),
            ("chaos_rate".to_string(), Json::from(cfg.chaos_rate)),
            ("clean".to_string(), self.clean.to_json()),
        ];
        if let Some(chaos) = &self.chaos {
            members.push(("chaos".to_string(), chaos.to_json()));
        }
        if let Some(st) = self.chaos_stats {
            members.push((
                "proxy_faults".to_string(),
                Json::obj([
                    ("connections", Json::from(st.connections)),
                    ("refused", Json::from(st.refused)),
                    ("truncated", Json::from(st.truncated)),
                    ("delayed", Json::from(st.delayed)),
                    ("blackholed", Json::from(st.blackholed)),
                    ("garbage", Json::from(st.garbage)),
                ]),
            ));
        }
        if let Some(stats) = &self.server_stats {
            members.push(("server_stats".to_string(), stats.clone()));
        }
        Json::Obj(members)
    }

    /// The `--check` gate: every submission classified, none lost, and
    /// (when server stats are available) the server's own admission
    /// ledger balances. Returns the first violation found.
    ///
    /// # Errors
    ///
    /// A human-readable description of the imbalance.
    pub fn check(&self, cfg: &LoadtestConfig) -> Result<(), String> {
        let want = cfg.submissions as u64;
        for (name, phase) in [("clean", Some(&self.clean)), ("chaos", self.chaos.as_ref())] {
            let Some(phase) = phase else { continue };
            if phase.total() != want {
                return Err(format!(
                    "{name} phase accounted {} outcomes for {want} submissions",
                    phase.total()
                ));
            }
            if phase.failed != 0 {
                return Err(format!(
                    "{name} phase lost {} submission(s) to transport failures",
                    phase.failed
                ));
            }
        }
        if let Some(stats) = self.server_stats.as_ref().and_then(|s| s.get("stats")) {
            let n = |key: &str| stats.get(key).and_then(Json::as_u64).unwrap_or(0);
            let accepted = n("accepted");
            let settled = n("completed") + n("timeouts") + n("internal_errors");
            if accepted != settled {
                return Err(format!(
                    "server ledger imbalance: accepted {accepted} != completed+timeouts+internal {settled}"
                ));
            }
        }
        Ok(())
    }
}

/// Poison-tolerant lock (same idiom as the server).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn ms_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// The request line for submission `i` — a pure function of
/// `(seed, i)`: mixed run/sweep/campaign over small template pools.
pub fn submission_line(cfg: &LoadtestConfig, i: u64) -> String {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let workload = WORKLOADS[rng.gen_range(0..WORKLOADS.len() as u32) as usize];
    let mode = MODES[rng.gen_range(0..MODES.len() as u32) as usize];
    let mut doc = match rng.gen_range(0..10u32) {
        // 60 % two-point runs,
        0..=5 => Json::obj([
            ("cmd", Json::str("run")),
            ("workload", Json::str(workload)),
            ("mode", Json::str(mode)),
            ("len", Json::from(cfg.len as u64)),
        ]),
        // 30 % small sweeps,
        6..=8 => Json::obj([
            ("cmd", Json::str("sweep")),
            ("workloads", Json::Arr(vec![Json::str(workload)])),
            ("modes", Json::Arr(vec![Json::str("off"), Json::str(mode)])),
            ("len", Json::from(cfg.len as u64)),
        ]),
        // 10 % fault campaigns.
        _ => Json::obj([
            ("cmd", Json::str("campaign")),
            ("workload", Json::str(workload)),
            ("mode", Json::str(mode)),
            ("len", Json::from(cfg.len as u64)),
            ("rates", Json::Arr(vec![Json::from(0.0)])),
        ]),
    };
    doc.set("id", Json::str(format!("load-{i}")));
    if let Some(ms) = cfg.deadline_ms {
        doc.set("deadline_ms", Json::from(ms));
    }
    doc.to_string()
}

/// Seeded arrival jitter before submission `i`, in milliseconds.
fn arrival_jitter_ms(cfg: &LoadtestConfig, i: u64) -> u64 {
    if cfg.arrival_jitter_ms == 0 {
        return 0;
    }
    let mut rng = SmallRng::seed_from_u64(
        cfg.seed ^ i.wrapping_mul(0xD1B5_4A32_D192_ED03) ^ 0xA5A5_A5A5_A5A5_A5A5,
    );
    rng.gen_range(0..cfg.arrival_jitter_ms)
}

/// What one submission ultimately became.
enum Outcome {
    Ok,
    Shed(u64),
    Timeout,
    ErrorReply,
    TransportFailed,
}

/// Submits one line to `addr` with transport retries; protocol replies
/// (ok/rejected/timeout/error) are final. Returns the outcome and the
/// retries spent.
fn submit_once(addr: &str, line: &str, max_retries: u32) -> (Outcome, u64) {
    let opts = ClientOptions {
        connect_timeout: Some(Duration::from_millis(1000)),
        read_timeout: Some(REPLY_POLL),
        max_line: 64 << 20,
    };
    let mut retries = 0u64;
    loop {
        match try_submit(addr, line, &opts) {
            Ok(outcome) => return (outcome, retries),
            Err(_) if retries < u64::from(max_retries) => {
                retries += 1;
                // Linear backoff is enough here: the loadtest measures
                // the service, not its own retry policy.
                std::thread::sleep(Duration::from_millis(25 * retries));
            }
            Err(_) => return (Outcome::TransportFailed, retries),
        }
    }
}

/// One submission attempt: transport errors are `Err` (retryable),
/// any parsed reply is a final outcome.
fn try_submit(addr: &str, line: &str, opts: &ClientOptions) -> Result<Outcome, String> {
    let mut client = Client::connect_with(addr, opts).map_err(|e| e.to_string())?;
    client.send_line(line).map_err(|e| e.to_string())?;
    let give_up = Instant::now() + ATTEMPT_BUDGET;
    let reply = loop {
        if Instant::now() >= give_up {
            return Err("reply budget exhausted".into());
        }
        match client.recv_line() {
            Ok(reply) => break reply,
            Err(ClientError::Timeout) => {} // poll tick
            Err(e) => return Err(e.to_string()),
        }
    };
    let doc = Json::parse(&reply).map_err(|e| format!("reply not JSON: {e}"))?;
    match doc.get("status").and_then(Json::as_str) {
        Some("ok") => Ok(Outcome::Ok),
        Some("rejected") => Ok(Outcome::Shed(
            doc.get("code").and_then(Json::as_u64).unwrap_or(0),
        )),
        Some("timeout") => Ok(Outcome::Timeout),
        Some("error") => Ok(Outcome::ErrorReply),
        _ => Err("reply without status".into()),
    }
}

/// Runs one phase: `cfg.submissions` submissions through
/// `cfg.concurrency` workers pulling indices from a shared counter.
pub fn run_phase(cfg: &LoadtestConfig, target: &LoadTarget) -> PhaseReport {
    let started = Instant::now();
    let next = AtomicUsize::new(0);
    let report = Mutex::new(PhaseReport::default());
    let dispatcher = match target {
        LoadTarget::Backends(backends) => Dispatcher::new(DispatchConfig {
            backends: backends.clone(),
            seed: cfg.seed,
            max_retries: cfg.max_retries,
            ..DispatchConfig::default()
        })
        .ok(),
        LoadTarget::Addr(_) => None,
    };
    std::thread::scope(|scope| {
        for _ in 0..cfg.concurrency.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfg.submissions {
                    return;
                }
                let i64u = i as u64;
                std::thread::sleep(Duration::from_millis(arrival_jitter_ms(cfg, i64u)));
                let line = submission_line(cfg, i64u);
                let t0 = Instant::now();
                let (outcome, retries) = match (&dispatcher, target) {
                    (Some(d), _) => dispatch_submit(d, &line),
                    (None, LoadTarget::Addr(addr)) => submit_once(addr, &line, cfg.max_retries),
                    (None, LoadTarget::Backends(_)) => (Outcome::TransportFailed, 0),
                };
                let latency = ms_since(t0);
                let mut r = lock(&report);
                r.retries += retries;
                r.latency_ms.record(latency);
                match outcome {
                    Outcome::Ok => r.ok += 1,
                    Outcome::Shed(code) if code == CODE_QUEUE_FULL => {
                        r.shed_queue_full += 1;
                    }
                    Outcome::Shed(code) if code == CODE_DRAINING => r.shed_draining += 1,
                    Outcome::Shed(code) if code == CODE_TOO_LARGE => r.shed_too_large += 1,
                    Outcome::Shed(_) => r.errors += 1,
                    Outcome::Timeout => r.timeouts += 1,
                    Outcome::ErrorReply => r.errors += 1,
                    Outcome::TransportFailed => r.failed += 1,
                }
            });
        }
    });
    let mut r = lock(&report);
    r.wall_ms = ms_since(started);
    r.clone()
}

/// Submission through the in-process dispatcher; its internal retry
/// machinery already bounds the attempts.
fn dispatch_submit(d: &Dispatcher, line: &str) -> (Outcome, u64) {
    let retries_before = d.telemetry().retries.get();
    match d.dispatch_line(line) {
        Ok(outcome) => {
            let spent = d.telemetry().retries.get().saturating_sub(retries_before);
            if outcome.timed_out {
                (Outcome::Timeout, spent)
            } else {
                (Outcome::Ok, spent)
            }
        }
        Err(e) => {
            let spent = d.telemetry().retries.get().saturating_sub(retries_before);
            // Typed rejections from a backend surface inside the shard
            // failure detail; everything here means the submission got
            // no usable answer.
            let _ = e;
            (Outcome::TransportFailed, spent)
        }
    }
}

/// Runs the harness against an already-listening server: a clean phase
/// straight at `addr`, then (with `chaos_rate > 0`) a chaos phase
/// through a seeded [`NetChaos`] proxy in front of it, then the
/// server's own `stats` ledger. The server is left running.
///
/// # Errors
///
/// Propagates proxy spawn failures as strings.
pub fn run_addr(cfg: &LoadtestConfig, addr: &str) -> Result<LoadtestReport, String> {
    let clean = run_phase(cfg, &LoadTarget::Addr(addr.to_string()));
    let (chaos, chaos_stats) = if cfg.chaos_rate > 0.0 {
        let mut proxy = NetChaos::spawn(
            addr.to_string(),
            ChaosPlan::Seeded {
                seed: cfg.seed ^ 0xC4A0_5C4A_05C4_A05C,
                rate: cfg.chaos_rate,
            },
        )
        .map_err(|e| format!("chaos proxy: {e}"))?;
        let phase = run_phase(cfg, &LoadTarget::Addr(proxy.addr().to_string()));
        proxy.shutdown();
        (Some(phase), Some(proxy.stats()))
    } else {
        (None, None)
    };
    Ok(LoadtestReport {
        clean,
        chaos,
        chaos_stats,
        server_stats: final_stats(addr),
    })
}

/// Runs the harness through an in-process shard dispatcher over a
/// backend fleet: a clean phase straight at the backends, then (with
/// `chaos_rate > 0`) a chaos phase with one seeded [`NetChaos`] proxy
/// in front of *each* backend, so the dispatcher's retry/failover
/// machinery is exercised end to end.
///
/// # Errors
///
/// Rejects an empty fleet; propagates proxy spawn failures.
pub fn run_backends(cfg: &LoadtestConfig, backends: &[String]) -> Result<LoadtestReport, String> {
    if backends.is_empty() {
        return Err("loadtest needs at least one backend".into());
    }
    let clean = run_phase(cfg, &LoadTarget::Backends(backends.to_vec()));
    let (chaos, chaos_stats) = if cfg.chaos_rate > 0.0 {
        let mut proxies = Vec::new();
        for (i, b) in backends.iter().enumerate() {
            proxies.push(
                NetChaos::spawn(
                    b.clone(),
                    ChaosPlan::Seeded {
                        seed: cfg.seed ^ (i as u64 + 1).wrapping_mul(0xC4A0_5C4A_05C4_A05C),
                        rate: cfg.chaos_rate,
                    },
                )
                .map_err(|e| format!("chaos proxy for {b}: {e}"))?,
            );
        }
        let fronted: Vec<String> = proxies.iter().map(|p| p.addr().to_string()).collect();
        let phase = run_phase(cfg, &LoadTarget::Backends(fronted));
        let mut total = ChaosStats::default();
        for mut p in proxies {
            p.shutdown();
            let s = p.stats();
            total.connections += s.connections;
            total.refused += s.refused;
            total.truncated += s.truncated;
            total.delayed += s.delayed;
            total.blackholed += s.blackholed;
            total.garbage += s.garbage;
        }
        (Some(phase), Some(total))
    } else {
        (None, None)
    };
    Ok(LoadtestReport {
        clean,
        chaos,
        chaos_stats,
        server_stats: None,
    })
}

/// Runs the full harness against a self-hosted loopback server
/// (see [`run_addr`] for the phase structure), then drains it with a
/// graceful shutdown.
///
/// # Errors
///
/// Propagates server bind/spawn failures as strings.
pub fn run_loopback(
    cfg: &LoadtestConfig,
    serve_cfg: ServeConfig,
) -> Result<LoadtestReport, String> {
    let server = Server::bind("127.0.0.1:0", serve_cfg).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());
    let report = run_addr(cfg, &addr);
    let _ = request_line(&addr, r#"{"cmd": "shutdown"}"#);
    let _ = server_thread.join();
    report
}

/// One direct request/reply against `addr` (no retries).
fn request_line(addr: &str, line: &str) -> Result<Json, String> {
    let opts = ClientOptions {
        connect_timeout: Some(Duration::from_millis(1000)),
        read_timeout: Some(Duration::from_secs(30)),
        max_line: 64 << 20,
    };
    let mut client = Client::connect_with(addr, &opts).map_err(|e| e.to_string())?;
    client
        .request(&Json::parse(line).map_err(|e| e.to_string())?)
        .map_err(|e| e.to_string())
}

fn final_stats(addr: &str) -> Option<Json> {
    request_line(addr, r#"{"cmd": "stats"}"#).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_and_mixed() {
        let cfg = LoadtestConfig::default();
        let a: Vec<String> = (0..60).map(|i| submission_line(&cfg, i)).collect();
        let b: Vec<String> = (0..60).map(|i| submission_line(&cfg, i)).collect();
        assert_eq!(a, b);
        let kinds: std::collections::HashSet<&str> = a
            .iter()
            .map(|l| {
                if l.contains("\"sweep\"") {
                    "sweep"
                } else if l.contains("\"campaign\"") {
                    "campaign"
                } else {
                    "run"
                }
            })
            .collect();
        assert_eq!(kinds.len(), 3, "60 draws must cover all three kinds");
        // Every generated line parses as a valid job request.
        for line in &a {
            assert!(
                crate::protocol::parse_request(line).is_ok(),
                "generated line must be valid: {line}"
            );
        }
    }

    #[test]
    fn phase_totals_balance_by_construction() {
        let p = PhaseReport {
            ok: 3,
            shed_queue_full: 1,
            timeouts: 2,
            ..PhaseReport::default()
        };
        assert_eq!(p.total(), 6);
        let v = p.to_json();
        assert_eq!(
            v.get("shed")
                .and_then(|s| s.get("queue_full"))
                .and_then(Json::as_u64),
            Some(1)
        );
    }
}
