//! Deterministic network fault injection: a loopback TCP proxy that
//! forwards the line protocol to a real backend and injects seeded
//! faults — connection refusal, mid-reply truncation, delayed or
//! black-holed reads, garbage lines — so tests can prove every retry
//! path in the dispatcher and client without flaky timing tricks.
//!
//! Determinism mirrors the simulator's `--chaos` philosophy: the fault
//! decision for connection *i* is a pure function of `(seed, i)` (or a
//! position in a scripted plan), never of wall-clock races, so a
//! failing test replays with the printed seed.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sim_rng::SmallRng;

/// Longest proxied line buffered before the relay gives up on the
/// connection (protects the proxy itself from unbounded growth).
const RELAY_MAX_LINE: usize = 64 << 20;

/// How long a relay read blocks before re-checking the stop flag.
const RELAY_TICK: Duration = Duration::from_millis(25);

/// One injected fault, applied to a single proxied connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetFault {
    /// Close the client connection before touching the backend — the
    /// client sees a reset/EOF where it expected a service.
    Refuse,
    /// Forward the request, then deliver only the first `n` bytes of
    /// the backend's reply and close — a mid-reply truncation.
    Truncate(usize),
    /// Forward the request, sit on the backend's reply for this long,
    /// then deliver it intact — a straggler, not a failure.
    Delay(Duration),
    /// Forward the request and swallow the reply forever — the client
    /// only escapes via its own read deadline.
    BlackHole,
    /// Replace the backend's reply with a line that is not JSON.
    Garbage,
}

/// How the proxy decides the fault for each accepted connection.
#[derive(Debug, Clone)]
pub enum ChaosPlan {
    /// Connection `i` gets `plan[i]` (`None` = clean); connections past
    /// the end of the script are clean.
    Scripted(Vec<Option<NetFault>>),
    /// Connection `i` draws from an RNG seeded by `(seed, i)`: with
    /// probability `rate` one of refuse/truncate/delay/garbage
    /// (uniformly), otherwise clean. Black holes are excluded from the
    /// seeded pool — they stall for the full client deadline, which
    /// belongs in targeted tests, not volume runs.
    Seeded {
        /// Base seed; each connection derives its own stream from it.
        seed: u64,
        /// Per-connection fault probability in `[0, 1]`.
        rate: f64,
    },
}

/// Lifetime fault accounting, snapshot via [`NetChaos::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted by the proxy.
    pub connections: u64,
    /// Connections refused outright.
    pub refused: u64,
    /// Replies truncated mid-line.
    pub truncated: u64,
    /// Replies delayed (then delivered intact).
    pub delayed: u64,
    /// Replies swallowed forever.
    pub blackholed: u64,
    /// Replies replaced with garbage lines.
    pub garbage: u64,
}

impl ChaosStats {
    /// Total injected faults (delays included — they are observable).
    pub fn faults(&self) -> u64 {
        self.refused + self.truncated + self.delayed + self.blackholed + self.garbage
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    refused: AtomicU64,
    truncated: AtomicU64,
    delayed: AtomicU64,
    blackholed: AtomicU64,
    garbage: AtomicU64,
}

/// A running fault-injection proxy. Dropping it stops the accept loop;
/// in-flight relays notice within one [`RELAY_TICK`].
pub struct NetChaos {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl NetChaos {
    /// Binds an ephemeral loopback port and starts proxying to
    /// `target` under the given plan.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(target: String, plan: ChaosPlan) -> io::Result<NetChaos> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, &target, &plan, &accept_stop, &accept_counters);
        });
        Ok(NetChaos {
            addr,
            stop,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address — point clients/dispatchers here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the fault accounting so far.
    pub fn stats(&self) -> ChaosStats {
        let c = &self.counters;
        ChaosStats {
            connections: c.connections.load(Ordering::Relaxed),
            refused: c.refused.load(Ordering::Relaxed),
            truncated: c.truncated.load(Ordering::Relaxed),
            delayed: c.delayed.load(Ordering::Relaxed),
            blackholed: c.blackholed.load(Ordering::Relaxed),
            garbage: c.garbage.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and unwinds the relays.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for NetChaos {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-connection fault, as a pure function of the plan and the
/// zero-based connection index.
fn fault_for(plan: &ChaosPlan, index: u64) -> Option<NetFault> {
    match plan {
        ChaosPlan::Scripted(script) => script
            .get(usize::try_from(index).unwrap_or(usize::MAX))
            .cloned()
            .flatten(),
        ChaosPlan::Seeded { seed, rate } => {
            let mut rng = SmallRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if !rng.gen_bool(*rate) {
                return None;
            }
            Some(match rng.gen_range(0..4u32) {
                0 => NetFault::Refuse,
                1 => NetFault::Truncate(24),
                2 => NetFault::Delay(Duration::from_millis(200)),
                _ => NetFault::Garbage,
            })
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    target: &str,
    plan: &ChaosPlan,
    stop: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    let mut index = 0u64;
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((client, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let fault = fault_for(plan, index);
                index += 1;
                let target = target.to_string();
                let stop = Arc::clone(stop);
                let counters = Arc::clone(counters);
                std::thread::spawn(move || relay(client, &target, fault, &stop, &counters));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Reads one `\n`-terminated line (raw bytes, newline included) from a
/// blocking-with-timeout stream. `Ok(None)` means the peer closed
/// cleanly before a full line; `Err` covers transport failures, the
/// stop flag, and the buffer cap.
fn read_relay_line(stream: &mut TcpStream, stop: &AtomicBool) -> io::Result<Option<Vec<u8>>> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if stop.load(Ordering::Acquire) {
            return Err(io::Error::other("proxy stopping"));
        }
        if buf.len() > RELAY_MAX_LINE {
            return Err(io::Error::new(
                ErrorKind::InvalidData,
                "relay line too long",
            ));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(if buf.is_empty() { None } else { Some(buf) }),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.contains(&b'\n') {
                    return Ok(Some(buf));
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Sleeps `total` in stop-aware slices.
fn chaos_sleep(total: Duration, stop: &AtomicBool) {
    let until = Instant::now() + total;
    while Instant::now() < until && !stop.load(Ordering::Acquire) {
        std::thread::sleep(RELAY_TICK.min(until.saturating_duration_since(Instant::now())));
    }
}

/// One proxied connection. The fault (if any) applies to the first
/// request/reply exchange; faults that survive it (`Delay`) leave the
/// connection relaying cleanly afterwards.
fn relay(
    mut client: TcpStream,
    target: &str,
    fault: Option<NetFault>,
    stop: &AtomicBool,
    counters: &Counters,
) {
    if matches!(fault, Some(NetFault::Refuse)) {
        counters.refused.fetch_add(1, Ordering::Relaxed);
        return; // dropping the socket resets the client
    }
    let Ok(mut backend) = TcpStream::connect(target) else {
        return;
    };
    let _ = client.set_read_timeout(Some(RELAY_TICK));
    let _ = backend.set_read_timeout(Some(RELAY_TICK));
    let mut first_reply = true;
    loop {
        let request = match read_relay_line(&mut client, stop) {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return,
        };
        if backend.write_all(&request).is_err() {
            return;
        }
        let reply = match read_relay_line(&mut backend, stop) {
            Ok(Some(line)) => line,
            Ok(None) | Err(_) => return,
        };
        let active = if first_reply { fault.as_ref() } else { None };
        first_reply = false;
        match active {
            None | Some(NetFault::Refuse) => {
                if client.write_all(&reply).is_err() {
                    return;
                }
            }
            Some(NetFault::Truncate(n)) => {
                counters.truncated.fetch_add(1, Ordering::Relaxed);
                let cut = (*n).min(reply.len().saturating_sub(1));
                let _ = client.write_all(&reply[..cut]);
                return; // close mid-reply
            }
            Some(NetFault::Delay(d)) => {
                counters.delayed.fetch_add(1, Ordering::Relaxed);
                chaos_sleep(*d, stop);
                if stop.load(Ordering::Acquire) || client.write_all(&reply).is_err() {
                    return;
                }
            }
            Some(NetFault::BlackHole) => {
                counters.blackholed.fetch_add(1, Ordering::Relaxed);
                // Swallow the reply and hold the socket open until the
                // client gives up (its read deadline) or we stop.
                loop {
                    match read_relay_line(&mut client, stop) {
                        Ok(Some(_)) => {}
                        Ok(None) | Err(_) => return,
                    }
                }
            }
            Some(NetFault::Garbage) => {
                counters.garbage.fetch_add(1, Ordering::Relaxed);
                let _ = client.write_all(b"%% chaos: not json %%\n");
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_fault_lookup_is_positional() {
        let plan = ChaosPlan::Scripted(vec![None, Some(NetFault::Refuse), None]);
        assert_eq!(fault_for(&plan, 0), None);
        assert_eq!(fault_for(&plan, 1), Some(NetFault::Refuse));
        assert_eq!(fault_for(&plan, 2), None);
        // Past the script: clean.
        assert_eq!(fault_for(&plan, 99), None);
    }

    #[test]
    fn seeded_faults_are_deterministic_and_rate_bounded() {
        let plan = ChaosPlan::Seeded {
            seed: 7,
            rate: 0.25,
        };
        let a: Vec<_> = (0..200).map(|i| fault_for(&plan, i)).collect();
        let b: Vec<_> = (0..200).map(|i| fault_for(&plan, i)).collect();
        assert_eq!(a, b, "same (seed, index) must draw the same fault");
        let faulted = a.iter().filter(|f| f.is_some()).count();
        assert!(
            (10..100).contains(&faulted),
            "rate 0.25 over 200 draws landed at {faulted}"
        );
        assert!(
            !a.iter().any(|f| matches!(f, Some(NetFault::BlackHole))),
            "black holes stay out of the seeded pool"
        );
        let zero = ChaosPlan::Seeded { seed: 7, rate: 0.0 };
        assert!((0..200).all(|i| fault_for(&zero, i).is_none()));
    }
}
