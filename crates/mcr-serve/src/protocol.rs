//! Request/response schema of the simulation service.
//!
//! One request per line, one JSON object per request; one JSON object
//! per response line. Every request carries a `"cmd"` discriminator:
//!
//! * `ping` / `stats` / `shutdown` — control plane, answered out of
//!   band (never queued).
//! * `run` — the CLI's two-point comparison (baseline vs one MCR
//!   configuration), same field vocabulary as the `mcr_sim` flags.
//! * `sweep` — a full experiment grid (workloads × modes × mechanisms ×
//!   alloc ratios × seeds), the service face of [`SweepBuilder`].
//! * `campaign` — a seeded fault-injection campaign: a zero-fault
//!   control point plus one point per requested rate.
//! * `compare` — the cross-architecture head-to-head: one trace
//!   replayed once per requested backend (see
//!   [`mcr_dram::CompareSpec`]).
//!
//! Parsing is strict: unknown fields and type mismatches are rejected
//! with a [`ProtocolError`] naming the offending key, so a typo'd
//! request fails loudly instead of silently running defaults.

use mcr_dram::{
    registered_backends, telemetry_to_json, BackendKind, BackendSpec, CompareSpec, ConfigError,
    FaultPlan, McrMode, Mechanisms, RowCacheConfig, Sweep, SweepBuilder, SweepResults,
    SystemConfig,
};
use sim_json::{Json, JsonError};
use trace_gen::{multi_programmed_mixes, multi_threaded_group, workload, Mix};

/// Default trace length (memory operations per core) when a request
/// does not specify `"len"` — matches the CLI default.
pub const DEFAULT_LEN: usize = 50_000;

/// Default config seed — matches the CLI default.
pub const DEFAULT_SEED: u64 = 2015;

/// Reject code for a full queue (load shedding).
pub const CODE_QUEUE_FULL: u64 = 429;

/// Reject code for a request that exceeds the service's size limits.
pub const CODE_TOO_LARGE: u64 = 413;

/// Reject code for a request arriving while the service drains.
pub const CODE_DRAINING: u64 = 503;

/// Why a request could not be turned into work.
#[derive(Debug)]
pub enum ProtocolError {
    /// The line was not valid JSON.
    Json(JsonError),
    /// The JSON did not match the request schema.
    Schema(String),
    /// The request described an invalid simulator configuration.
    Config(ConfigError),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Json(e) => write!(f, "bad JSON: {e}"),
            ProtocolError::Schema(msg) => write!(f, "{msg}"),
            ProtocolError::Config(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Json(e) => Some(e),
            ProtocolError::Schema(_) => None,
            ProtocolError::Config(e) => Some(e),
        }
    }
}

impl From<JsonError> for ProtocolError {
    fn from(e: JsonError) -> Self {
        ProtocolError::Json(e)
    }
}

impl From<ConfigError> for ProtocolError {
    fn from(e: ConfigError) -> Self {
        ProtocolError::Config(e)
    }
}

fn schema(msg: impl Into<String>) -> ProtocolError {
    ProtocolError::Schema(msg.into())
}

/// Parses the CLI/protocol mode notation: `"off"` or `M/Kx/L` (L in
/// percent), e.g. `"4/4x/100"` for the paper's headline mode.
pub fn parse_mode(text: &str) -> Option<McrMode> {
    if text == "off" {
        return Some(McrMode::off());
    }
    let mut parts = text.split('/');
    let m: u32 = parts.next()?.parse().ok()?;
    let k: u32 = parts.next()?.strip_suffix('x')?.parse().ok()?;
    let l: f64 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    McrMode::new(m, k, l / 100.0).ok()
}

/// Fault plan used for `"fault_rate"` requests and the CLI's
/// `--fault-rate`: weak cells (at half retention), dropped and late
/// refreshes all at `rate`, plus sense glitches at a tenth of it, all
/// driven by `seed`.
pub fn fault_plan(rate: f64, seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_weak_cells(rate, 0.5)
        .with_refresh_drops(rate)
        .with_late_refreshes(rate, 1_000)
        .with_sense_glitches(rate / 10.0)
}

/// One parsed request line.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe; answered immediately.
    Ping,
    /// Service counters and queue state; answered immediately.
    Stats,
    /// Graceful shutdown: drain in-flight work, reject new work.
    Shutdown,
    /// A simulation job to queue.
    Job(Box<JobRequest>),
}

/// A queued simulation job: the spec plus delivery options.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Caller-chosen identifier, echoed in the response.
    pub id: Option<String>,
    /// Deadline budget in milliseconds from admission; the job is
    /// cancelled (and answered with `"status": "timeout"`) once spent.
    pub deadline_ms: Option<u64>,
    /// Attach the merged simulator telemetry to the response.
    pub metrics: bool,
    /// Restrict the job to one shard of its grid: `(index, count)`
    /// under [`mcr_dram::shard_of_key`]. Set by the shard dispatcher,
    /// not by end users; the server builds the full grid, then keeps
    /// only the points this shard owns.
    pub shard: Option<(usize, usize)>,
    /// Attach each point's full lossless report (`"report"` member,
    /// `mcr-store` codec) to the response, so a dispatcher can merge
    /// shards bit-identically with a single-instance run.
    pub full_reports: bool,
    /// What to simulate.
    pub spec: JobSpec,
}

/// The simulation described by a job request.
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// Two-point baseline-vs-MCR comparison.
    Run(RunSpec),
    /// Full experiment grid.
    Sweep(SweepSpec),
    /// Fault-injection campaign.
    Campaign(CampaignSpec),
    /// Cross-architecture head-to-head over one trace.
    Compare(CompareSpec),
}

impl JobSpec {
    /// Wire name of the spec kind, echoed in responses.
    pub fn kind(&self) -> &'static str {
        match self {
            JobSpec::Run(_) => "run",
            JobSpec::Sweep(_) => "sweep",
            JobSpec::Campaign(_) => "campaign",
            JobSpec::Compare(_) => "compare",
        }
    }

    /// Number of grid points the job will expand to (admission control
    /// sizes the work before building it).
    pub fn point_count(&self) -> usize {
        match self {
            JobSpec::Run(_) => 2,
            JobSpec::Sweep(s) => s.point_count(),
            JobSpec::Campaign(c) => c.rates.len() + 1,
            JobSpec::Compare(c) => c.backends.len(),
        }
    }

    /// Trace length (memory operations per core) of the job.
    pub fn trace_len(&self) -> usize {
        match self {
            JobSpec::Run(r) => r.len,
            JobSpec::Sweep(s) => s.len,
            JobSpec::Campaign(c) => c.base.len,
            JobSpec::Compare(c) => c.len,
        }
    }

    /// Builds the validated, ready-to-run sweep for this spec.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Schema`] for unresolvable names or out-of-range
    /// fields, [`ProtocolError::Config`] when the simulator rejects a
    /// point.
    pub fn sweep(&self, jobs: Option<usize>) -> Result<Sweep, ProtocolError> {
        match self {
            JobSpec::Run(r) => r.sweep(jobs),
            JobSpec::Sweep(s) => s.sweep(jobs),
            JobSpec::Campaign(c) => c.sweep(jobs),
            JobSpec::Compare(c) => c.sweep(jobs).map_err(schema),
        }
    }
}

/// The CLI's two-point comparison as a request: one target (workload or
/// mix), one MCR configuration, always run next to the zeroed baseline.
///
/// Field-for-field the same vocabulary as the `mcr_sim` flags, so a
/// request submitted over the wire and a local `--json` run build the
/// *identical* sweep — the determinism guard in
/// `tests/sweep_determinism.rs` holds the two byte-equal.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Single-core workload name (mutually exclusive with `mix`).
    pub workload: Option<String>,
    /// Multi-core mix name (mutually exclusive with `workload`).
    pub mix: Option<String>,
    /// MCR mode of the non-baseline point.
    pub mode: McrMode,
    /// Memory operations per core.
    pub len: usize,
    /// Profile-based allocation ratio in `[0, 1]`.
    pub alloc: f64,
    /// Manage the MCR region as a row cache with this promote
    /// threshold.
    pub row_cache: Option<u32>,
    /// Config seed.
    pub seed: u64,
    /// Fig. 17 mechanisms case (1–4); `None` means all mechanisms on.
    pub mechanisms_case: Option<u32>,
    /// Arm retention-fault injection at this rate.
    pub fault_rate: Option<f64>,
    /// Fault-plan seed; defaults to `seed`.
    pub fault_seed: Option<u64>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            workload: None,
            mix: None,
            mode: McrMode::off(),
            len: DEFAULT_LEN,
            alloc: 0.0,
            row_cache: None,
            seed: DEFAULT_SEED,
            mechanisms_case: None,
            fault_rate: None,
            fault_seed: None,
        }
    }
}

/// Resolves a mix name against the trace generator's pools, with the
/// same error text as the CLI.
fn resolve_mix(name: &str) -> Result<Mix, ProtocolError> {
    let mut pool = multi_programmed_mixes(2015);
    pool.extend(multi_threaded_group());
    pool.into_iter()
        .find(|m| m.name == name)
        .ok_or_else(|| schema(format!("unknown mix {name:?} (mix01..mix14, MT-*)")))
}

impl RunSpec {
    /// Resolves the spec into `(baseline config, MCR config, target
    /// name)`. The baseline is the MCR config with every MCR knob
    /// zeroed — identical to the CLI's construction.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Schema`] for unknown targets or out-of-range
    /// fields.
    pub fn configs(&self) -> Result<(SystemConfig, SystemConfig, String), ProtocolError> {
        let (mut cfg, target) = match (&self.workload, &self.mix) {
            (Some(name), None) => {
                workload(name)
                    .ok_or_else(|| schema(format!("unknown workload {name:?} (try --list)")))?;
                (SystemConfig::single_core(name, self.len), name.clone())
            }
            (None, Some(name)) => {
                let mix = resolve_mix(name)?;
                (SystemConfig::multi_core_mix(&mix, self.len), name.clone())
            }
            (Some(_), Some(_)) => {
                return Err(schema("--workload and --mix are mutually exclusive"))
            }
            (None, None) => return Err(schema("need --workload or --mix (or --list)")),
        };
        let mechanisms = match self.mechanisms_case {
            None => Mechanisms::all(),
            Some(case) if (1..=4).contains(&case) => Mechanisms::fig17_case(case),
            Some(_) => return Err(schema("mechanisms case must be 1-4")),
        };
        cfg = cfg
            .with_mode(self.mode)
            .with_mechanisms(mechanisms)
            .with_alloc_ratio(self.alloc)
            .with_seed(self.seed);
        if let Some(threshold) = self.row_cache {
            cfg = cfg.with_row_cache(RowCacheConfig {
                promote_threshold: threshold,
            });
        }
        if let Some(rate) = self.fault_rate {
            if !(0.0..=1.0).contains(&rate) {
                return Err(schema(format!("fault_rate must be in [0, 1], got {rate}")));
            }
            cfg = cfg.with_fault_plan(fault_plan(rate, self.fault_seed.unwrap_or(self.seed)));
        }
        let mut base = cfg.clone();
        base.mode = McrMode::off();
        base.region_map = None;
        base.mechanisms = Mechanisms::none();
        base.alloc_ratio = 0.0;
        base.row_cache = None;
        base.fault_plan = None;
        Ok((base, cfg, target))
    }

    /// The two-point sweep (`"baseline [off]"` then `"MCR <mode>"`) —
    /// the exact shape the CLI runs locally.
    ///
    /// # Errors
    ///
    /// See [`RunSpec::configs`]; additionally
    /// [`ProtocolError::Config`] when either point fails validation.
    pub fn sweep(&self, jobs: Option<usize>) -> Result<Sweep, ProtocolError> {
        let (base, cfg, _) = self.configs()?;
        let mut builder = SweepBuilder::new(self.len)
            .point("baseline [off]", base)
            .point(format!("MCR {}", self.mode), cfg);
        if let Some(jobs) = jobs {
            builder = builder.jobs(jobs);
        }
        Ok(builder.build()?)
    }
}

/// A full experiment grid: the service face of [`SweepBuilder`]'s
/// cartesian axes.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Memory operations per core.
    pub len: usize,
    /// Single-core workload names.
    pub workloads: Vec<String>,
    /// Multi-core mix names.
    pub mixes: Vec<String>,
    /// MCR modes axis (empty means `[off]`).
    pub modes: Vec<McrMode>,
    /// Fig. 17 mechanisms cases axis (empty means all-on).
    pub mechanisms: Vec<u32>,
    /// Allocation-ratio axis (empty means `[0.0]`).
    pub allocs: Vec<f64>,
    /// Seed axis (empty means the config default).
    pub seeds: Vec<u64>,
}

impl SweepSpec {
    /// Expanded grid size (for admission control): targets × every
    /// non-empty axis.
    pub fn point_count(&self) -> usize {
        let axis = |n: usize| n.max(1);
        (self.workloads.len() + self.mixes.len())
            * axis(self.modes.len())
            * axis(self.mechanisms.len())
            * axis(self.allocs.len())
            * axis(self.seeds.len())
    }

    /// Builds the grid.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Schema`] for unknown names or bad cases,
    /// [`ProtocolError::Config`] when a point fails validation.
    pub fn sweep(&self, jobs: Option<usize>) -> Result<Sweep, ProtocolError> {
        let mut builder = SweepBuilder::new(self.len);
        for name in &self.workloads {
            workload(name).ok_or_else(|| schema(format!("unknown workload {name:?}")))?;
            builder = builder.workload(name);
        }
        for name in &self.mixes {
            builder = builder.mix(&resolve_mix(name)?);
        }
        for &mode in &self.modes {
            builder = builder.mode(mode);
        }
        for &case in &self.mechanisms {
            if !(1..=4).contains(&case) {
                return Err(schema("mechanisms case must be 1-4"));
            }
            builder = builder.mechanisms(Mechanisms::fig17_case(case));
        }
        for &ratio in &self.allocs {
            builder = builder.alloc_ratio(ratio);
        }
        if !self.seeds.is_empty() {
            builder = builder.seeds(self.seeds.iter().copied());
        }
        if let Some(jobs) = jobs {
            builder = builder.jobs(jobs);
        }
        Ok(builder.build()?)
    }
}

/// A seeded fault-injection campaign: the base configuration run clean
/// (the control) plus one faulted point per rate.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Target configuration; its `fault_rate` must be unset (the
    /// campaign arms its own plans).
    pub base: RunSpec,
    /// Injection rates, each in `[0, 1]`.
    pub rates: Vec<f64>,
    /// Seed driving every fault plan of the campaign.
    pub fault_seed: u64,
}

impl CampaignSpec {
    /// Builds the control + campaign sweep.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Schema`] for empty/out-of-range rates or a base
    /// spec that arms its own faults; see also [`RunSpec::configs`].
    pub fn sweep(&self, jobs: Option<usize>) -> Result<Sweep, ProtocolError> {
        if self.base.fault_rate.is_some() {
            return Err(schema(
                "campaign base must not set fault_rate (the campaign arms its own plans)",
            ));
        }
        if self.rates.is_empty() {
            return Err(schema("campaign needs at least one rate"));
        }
        for &rate in &self.rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(schema(format!("rate must be in [0, 1], got {rate}")));
            }
        }
        let (_, cfg, target) = self.base.configs()?;
        let mut builder = SweepBuilder::new(self.base.len)
            .point(format!("control {target}"), cfg.clone())
            .fault_campaign(&cfg, &self.rates, self.fault_seed);
        if let Some(jobs) = jobs {
            builder = builder.jobs(jobs);
        }
        Ok(builder.build()?)
    }
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

/// Typed field access with schema-shaped errors.
struct Fields<'a> {
    members: &'a [(String, Json)],
}

impl<'a> Fields<'a> {
    fn of(v: &'a Json, what: &str) -> Result<Self, ProtocolError> {
        let members = v
            .as_object()
            .ok_or_else(|| schema(format!("{what} must be a JSON object")))?;
        Ok(Fields { members })
    }

    /// Rejects any member whose key is not in `allowed`.
    fn restrict(&self, allowed: &[&str]) -> Result<(), ProtocolError> {
        for (key, _) in self.members {
            if !allowed.contains(&key.as_str()) {
                return Err(schema(format!(
                    "unknown field {key:?} (allowed: {})",
                    allowed.join(", ")
                )));
            }
        }
        Ok(())
    }

    fn get(&self, key: &str) -> Option<&'a Json> {
        self.members.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn str_opt(&self, key: &str) -> Result<Option<String>, ProtocolError> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| schema(format!("{key:?} must be a string"))),
        }
    }

    fn u64_opt(&self, key: &str) -> Result<Option<u64>, ProtocolError> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(Some)
                .ok_or_else(|| schema(format!("{key:?} must be a non-negative integer"))),
        }
    }

    fn u32_opt(&self, key: &str) -> Result<Option<u32>, ProtocolError> {
        match self.u64_opt(key)? {
            None => Ok(None),
            Some(n) => u32::try_from(n)
                .map(Some)
                .map_err(|_| schema(format!("{key:?} is out of range"))),
        }
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, ProtocolError> {
        match self.u64_opt(key)? {
            None => Ok(default),
            Some(n) => usize::try_from(n).map_err(|_| schema(format!("{key:?} is out of range"))),
        }
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, ProtocolError> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(default),
            Some(v) => v
                .as_f64()
                .ok_or_else(|| schema(format!("{key:?} must be a number"))),
        }
    }

    fn f64_opt(&self, key: &str) -> Result<Option<f64>, ProtocolError> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| schema(format!("{key:?} must be a number"))),
        }
    }

    fn bool_or(&self, key: &str, default: bool) -> Result<bool, ProtocolError> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(default),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| schema(format!("{key:?} must be a boolean"))),
        }
    }

    fn arr(&self, key: &str) -> Result<&'a [Json], ProtocolError> {
        match self.get(key) {
            None | Some(Json::Null) => Ok(&[]),
            Some(v) => v
                .as_array()
                .ok_or_else(|| schema(format!("{key:?} must be an array"))),
        }
    }

    fn mode_or_off(&self, key: &str) -> Result<McrMode, ProtocolError> {
        match self.str_opt(key)? {
            None => Ok(McrMode::off()),
            Some(text) => parse_mode(&text)
                .ok_or_else(|| schema(format!("bad mode {text:?} (want M/Kx/L or off)"))),
        }
    }
}

fn parse_mode_list(items: &[Json]) -> Result<Vec<McrMode>, ProtocolError> {
    items
        .iter()
        .map(|v| {
            let text = v
                .as_str()
                .ok_or_else(|| schema("\"modes\" entries must be strings"))?;
            parse_mode(text)
                .ok_or_else(|| schema(format!("bad mode {text:?} (want M/Kx/L or off)")))
        })
        .collect()
}

fn parse_u64_list(items: &[Json], key: &str) -> Result<Vec<u64>, ProtocolError> {
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .ok_or_else(|| schema(format!("{key:?} entries must be non-negative integers")))
        })
        .collect()
}

fn parse_f64_list(items: &[Json], key: &str) -> Result<Vec<f64>, ProtocolError> {
    items
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| schema(format!("{key:?} entries must be numbers")))
        })
        .collect()
}

fn parse_str_list(items: &[Json], key: &str) -> Result<Vec<String>, ProtocolError> {
    items
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| schema(format!("{key:?} entries must be strings")))
        })
        .collect()
}

/// Resolves the `"backends"` name list of a `compare` request into
/// backend specs; an empty (or absent) list means every registered
/// backend, in canonical order.
fn parse_backend_kinds(names: Vec<String>) -> Result<Vec<BackendSpec>, ProtocolError> {
    if names.is_empty() {
        return Ok(registered_backends());
    }
    names
        .iter()
        .map(|name| {
            BackendKind::parse(name)
                .map(BackendSpec::new)
                .ok_or_else(|| {
                    schema(format!(
                        "unknown backend {name:?} (want mcr, baseline, tldram, or clrdram)"
                    ))
                })
        })
        .collect()
}

/// Fields shared by every job request.
const JOB_COMMON: [&str; 6] = [
    "cmd",
    "id",
    "deadline_ms",
    "metrics",
    "shard",
    "full_reports",
];

/// Parses the optional `"shard": {"index": I, "count": N}` member.
fn shard_opt(f: &Fields<'_>) -> Result<Option<(usize, usize)>, ProtocolError> {
    let v = match f.get("shard") {
        None | Some(Json::Null) => return Ok(None),
        Some(v) => v,
    };
    let sf = Fields::of(v, "\"shard\"")?;
    sf.restrict(&["index", "count"])?;
    let index = sf
        .u64_opt("index")?
        .ok_or_else(|| schema("\"shard\" needs an \"index\""))?;
    let count = sf
        .u64_opt("count")?
        .ok_or_else(|| schema("\"shard\" needs a \"count\""))?;
    if count == 0 || index >= count {
        return Err(schema(format!(
            "shard index {index} out of range for count {count}"
        )));
    }
    let index = usize::try_from(index).map_err(|_| schema("\"index\" is out of range"))?;
    let count = usize::try_from(count).map_err(|_| schema("\"count\" is out of range"))?;
    Ok(Some((index, count)))
}

fn run_spec_from(f: &Fields<'_>) -> Result<RunSpec, ProtocolError> {
    Ok(RunSpec {
        workload: f.str_opt("workload")?,
        mix: f.str_opt("mix")?,
        mode: f.mode_or_off("mode")?,
        len: f.usize_or("len", DEFAULT_LEN)?,
        alloc: f.f64_or("alloc", 0.0)?,
        row_cache: f.u32_opt("row_cache")?,
        seed: f.u64_opt("seed")?.unwrap_or(DEFAULT_SEED),
        mechanisms_case: f.u32_opt("mechanisms")?,
        fault_rate: f.f64_opt("fault_rate")?,
        fault_seed: f.u64_opt("fault_seed")?,
    })
}

/// Field names a `run` spec understands (also the campaign base).
const RUN_FIELDS: [&str; 10] = [
    "workload",
    "mix",
    "mode",
    "len",
    "alloc",
    "row_cache",
    "seed",
    "mechanisms",
    "fault_rate",
    "fault_seed",
];

/// Parses one request line.
///
/// # Errors
///
/// [`ProtocolError::Json`] when the line is not JSON,
/// [`ProtocolError::Schema`] when it does not match the request schema.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let doc = Json::parse(line)?;
    let f = Fields::of(&doc, "a request")?;
    let cmd = f
        .str_opt("cmd")?
        .ok_or_else(|| schema("request needs a \"cmd\" field"))?;
    match cmd.as_str() {
        "ping" => {
            f.restrict(&["cmd", "id"])?;
            Ok(Request::Ping)
        }
        "stats" => {
            f.restrict(&["cmd", "id"])?;
            Ok(Request::Stats)
        }
        "shutdown" => {
            f.restrict(&["cmd", "id"])?;
            Ok(Request::Shutdown)
        }
        "run" => {
            let allowed: Vec<&str> = JOB_COMMON
                .iter()
                .chain(RUN_FIELDS.iter())
                .copied()
                .collect();
            f.restrict(&allowed)?;
            Ok(Request::Job(Box::new(JobRequest {
                id: f.str_opt("id")?,
                deadline_ms: f.u64_opt("deadline_ms")?,
                metrics: f.bool_or("metrics", false)?,
                shard: shard_opt(&f)?,
                full_reports: f.bool_or("full_reports", false)?,
                spec: JobSpec::Run(run_spec_from(&f)?),
            })))
        }
        "sweep" => {
            let allowed: Vec<&str> = JOB_COMMON
                .iter()
                .copied()
                .chain([
                    "len",
                    "workloads",
                    "mixes",
                    "modes",
                    "mechanisms",
                    "allocs",
                    "seeds",
                ])
                .collect();
            f.restrict(&allowed)?;
            let spec = SweepSpec {
                len: f.usize_or("len", DEFAULT_LEN)?,
                workloads: parse_str_list(f.arr("workloads")?, "workloads")?,
                mixes: parse_str_list(f.arr("mixes")?, "mixes")?,
                modes: parse_mode_list(f.arr("modes")?)?,
                mechanisms: parse_u64_list(f.arr("mechanisms")?, "mechanisms")?
                    .into_iter()
                    .map(|n| u32::try_from(n).unwrap_or(u32::MAX))
                    .collect(),
                allocs: parse_f64_list(f.arr("allocs")?, "allocs")?,
                seeds: parse_u64_list(f.arr("seeds")?, "seeds")?,
            };
            if spec.workloads.is_empty() && spec.mixes.is_empty() {
                return Err(schema("sweep needs at least one workload or mix"));
            }
            Ok(Request::Job(Box::new(JobRequest {
                id: f.str_opt("id")?,
                deadline_ms: f.u64_opt("deadline_ms")?,
                metrics: f.bool_or("metrics", false)?,
                shard: shard_opt(&f)?,
                full_reports: f.bool_or("full_reports", false)?,
                spec: JobSpec::Sweep(spec),
            })))
        }
        "campaign" => {
            let allowed: Vec<&str> = JOB_COMMON
                .iter()
                .chain(RUN_FIELDS.iter())
                .copied()
                .chain(["rates"])
                .collect();
            f.restrict(&allowed)?;
            let base = run_spec_from(&f)?;
            let fault_seed = base.fault_seed.unwrap_or(base.seed);
            let spec = CampaignSpec {
                base,
                rates: parse_f64_list(f.arr("rates")?, "rates")?,
                fault_seed,
            };
            Ok(Request::Job(Box::new(JobRequest {
                id: f.str_opt("id")?,
                deadline_ms: f.u64_opt("deadline_ms")?,
                metrics: f.bool_or("metrics", false)?,
                shard: shard_opt(&f)?,
                full_reports: f.bool_or("full_reports", false)?,
                spec: JobSpec::Campaign(spec),
            })))
        }
        "compare" => {
            let allowed: Vec<&str> = JOB_COMMON
                .iter()
                .copied()
                .chain(["workload", "mix", "mode", "len", "seed", "backends"])
                .collect();
            f.restrict(&allowed)?;
            let spec = CompareSpec {
                workload: f.str_opt("workload")?,
                mix: f.str_opt("mix")?,
                mode: match f.str_opt("mode")? {
                    None => McrMode::headline(),
                    Some(text) => parse_mode(&text)
                        .ok_or_else(|| schema(format!("bad mode {text:?} (want M/Kx/L or off)")))?,
                },
                len: f.usize_or("len", DEFAULT_LEN)?,
                seed: f.u64_opt("seed")?.unwrap_or(DEFAULT_SEED),
                backends: parse_backend_kinds(parse_str_list(f.arr("backends")?, "backends")?)?,
            };
            Ok(Request::Job(Box::new(JobRequest {
                id: f.str_opt("id")?,
                deadline_ms: f.u64_opt("deadline_ms")?,
                metrics: f.bool_or("metrics", false)?,
                shard: shard_opt(&f)?,
                full_reports: f.bool_or("full_reports", false)?,
                spec: JobSpec::Compare(spec),
            })))
        }
        other => Err(schema(format!(
            "unknown cmd {other:?} (want ping, stats, shutdown, run, sweep, campaign, or compare)"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

/// `{"status": "ok", "pong": true}` — the ping answer.
pub fn render_pong() -> String {
    Json::obj([("status", Json::str("ok")), ("pong", Json::from(true))]).to_string()
}

/// A typed rejection (load shedding, drain, size limits).
pub fn render_rejected(code: u64, reason: &str) -> String {
    Json::obj([
        ("status", Json::str("rejected")),
        ("code", Json::from(code)),
        ("reason", Json::str(reason)),
    ])
    .to_string()
}

/// A deadline-expiry answer.
pub fn render_timeout(id: Option<&str>, deadline_ms: u64) -> String {
    Json::obj([
        ("status", Json::str("timeout")),
        ("id", id.map(Json::str).unwrap_or(Json::Null)),
        ("deadline_ms", Json::from(deadline_ms)),
    ])
    .to_string()
}

/// A request-level failure (bad JSON, schema violation, invalid
/// configuration, internal error).
pub fn render_error(reason: &str) -> String {
    Json::obj([
        ("status", Json::str("error")),
        ("reason", Json::str(reason)),
    ])
    .to_string()
}

/// The answer for a job whose simulation panicked inside a worker
/// (contained by `catch_unwind`). Names the config key of the point
/// that was running when the panic fired — both in the reason text and
/// as a structured member — so the failing point is diagnosable and
/// replayable from the client side.
pub fn render_panic(id: Option<&str>, config_key: Option<u64>) -> String {
    let reason = match config_key {
        Some(key) => format!("internal: simulation panicked at config_key {key:016x}"),
        None => "internal: simulation panicked".to_string(),
    };
    Json::obj([
        ("status", Json::str("error")),
        ("id", id.map(Json::str).unwrap_or(Json::Null)),
        ("reason", Json::str(reason)),
        (
            "config_key",
            config_key
                .map(|key| Json::str(format!("{key:016x}")))
                .unwrap_or(Json::Null),
        ),
    ])
    .to_string()
}

/// Renders a completed job: the sweep results (re-parsed through the
/// codec, so the response is one compact line), optional per-point
/// reliability (campaigns), optional merged telemetry.
pub fn render_job_ok(
    req: &JobRequest,
    results: &SweepResults,
    queue_ms: u64,
    service_ms: u64,
) -> String {
    let mut result = match Json::parse(&results.to_json()) {
        Ok(v) => v,
        Err(e) => {
            return render_error(&format!("internal: results emitter produced bad JSON: {e}"))
        }
    };
    if req.full_reports {
        if let Err(e) = attach_full_reports(&mut result, results) {
            return render_error(&e);
        }
    }
    let mut members: Vec<(String, Json)> = vec![
        ("status".into(), Json::str("ok")),
        (
            "id".into(),
            req.id.as_deref().map(Json::str).unwrap_or(Json::Null),
        ),
        ("kind".into(), Json::str(req.spec.kind())),
        ("queue_ms".into(), Json::from(queue_ms)),
        ("service_ms".into(), Json::from(service_ms)),
        ("result".into(), result),
    ];
    if let JobSpec::Campaign(_) = req.spec {
        members.push(("reliability".into(), reliability_json(results)));
        // An empty shard of a campaign has nothing to compare; it is
        // vacuously clean (the dispatcher judges the merged whole).
        let reads0 = results.points.first().map(|p| p.report.reads_done);
        let clean = results.points.iter().all(|p| {
            p.report.reliability.retention_escapes == 0 && Some(p.report.reads_done) == reads0
        });
        members.push(("clean".into(), Json::from(clean)));
    }
    if req.metrics {
        match Json::parse(&telemetry_to_json(&results.merged_telemetry())) {
            Ok(v) => members.push(("telemetry".into(), v)),
            Err(e) => {
                return render_error(&format!(
                    "internal: telemetry emitter produced bad JSON: {e}"
                ))
            }
        }
    }
    Json::Obj(members).to_string()
}

/// Adds each point's full lossless report (the `mcr-store` codec
/// object) as a `"report"` member of the corresponding entry of the
/// response's `result.points` array.
fn attach_full_reports(result: &mut Json, results: &SweepResults) -> Result<(), String> {
    let Json::Obj(members) = result else {
        return Err("internal: results document is not an object".into());
    };
    let Some((_, Json::Arr(items))) = members.iter_mut().find(|(k, _)| k == "points") else {
        return Err("internal: results document has no points array".into());
    };
    if items.len() != results.points.len() {
        return Err("internal: results document points mismatch".into());
    }
    for (item, p) in items.iter_mut().zip(&results.points) {
        if !item.set("report", mcr_store::report_to_json(&p.report)) {
            return Err("internal: results point is not an object".into());
        }
    }
    Ok(())
}

/// Per-point reliability summary for campaign responses.
fn reliability_json(results: &SweepResults) -> Json {
    Json::Arr(
        results
            .points
            .iter()
            .map(|p| {
                let rel = &p.report.reliability;
                Json::obj([
                    ("label", Json::str(p.label.as_str())),
                    ("escapes", Json::from(rel.retention_escapes)),
                    ("retries", Json::from(rel.retention_retries)),
                    ("dropped", Json::from(rel.refresh_dropped)),
                    ("late", Json::from(rel.refresh_late)),
                    ("degrades", Json::from(rel.guardband_degrades)),
                    ("reads_done", Json::from(p.report.reads_done)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_run_request_with_defaults() {
        let req = parse_request(r#"{"cmd": "run", "workload": "libq"}"#).expect("parses");
        let Request::Job(job) = req else {
            panic!("expected a job")
        };
        assert!(job.id.is_none());
        assert!(job.deadline_ms.is_none());
        let JobSpec::Run(spec) = &job.spec else {
            panic!("expected run spec")
        };
        assert_eq!(spec.workload.as_deref(), Some("libq"));
        assert_eq!(spec.len, DEFAULT_LEN);
        assert_eq!(spec.seed, DEFAULT_SEED);
        assert_eq!(spec.mode, McrMode::off());
    }

    #[test]
    fn rejects_unknown_fields_and_commands() {
        let e = parse_request(r#"{"cmd": "run", "workload": "libq", "bogus": 1}"#)
            .expect_err("unknown field");
        assert!(e.to_string().contains("bogus"), "{e}");
        let e = parse_request(r#"{"cmd": "explode"}"#).expect_err("unknown cmd");
        assert!(e.to_string().contains("explode"), "{e}");
        let e = parse_request("not json").expect_err("bad json");
        assert!(matches!(e, ProtocolError::Json(_)), "{e}");
    }

    #[test]
    fn run_spec_builds_the_cli_shaped_sweep() {
        let spec = RunSpec {
            workload: Some("libq".into()),
            mode: parse_mode("4/4x/100").expect("headline mode"),
            len: 1_000,
            ..RunSpec::default()
        };
        let sweep = spec.sweep(None).expect("builds");
        let labels: Vec<&str> = sweep.points().iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, ["baseline [off]", "MCR [4/4x/100%reg]"]);
    }

    #[test]
    fn sweep_spec_counts_points_before_building() {
        let req = parse_request(
            r#"{"cmd": "sweep", "len": 800, "workloads": ["libq", "comm1"],
                "modes": ["off", "4/4x/100"], "seeds": [1, 2, 3]}"#,
        )
        .expect("parses");
        let Request::Job(job) = req else {
            panic!("expected job")
        };
        assert_eq!(job.spec.point_count(), 12);
        let sweep = job.spec.sweep(Some(1)).expect("builds");
        assert_eq!(sweep.points().len(), 12);
    }

    #[test]
    fn campaign_rejects_armed_base_and_bad_rates() {
        let e = parse_request(
            r#"{"cmd": "campaign", "workload": "libq", "rates": [0.1], "fault_rate": 0.5}"#,
        )
        .expect("parses")
        .job_sweep_err();
        assert!(e.to_string().contains("campaign base"), "{e}");
        let e = parse_request(r#"{"cmd": "campaign", "workload": "libq", "rates": [1.5]}"#)
            .expect("parses")
            .job_sweep_err();
        assert!(e.to_string().contains("[0, 1]"), "{e}");
    }

    impl Request {
        /// Test helper: building the job's sweep must fail.
        fn job_sweep_err(self) -> ProtocolError {
            let Request::Job(job) = self else {
                panic!("expected a job")
            };
            job.spec.sweep(None).expect_err("sweep must fail")
        }
    }

    #[test]
    fn mode_strings_round_trip_through_the_parser() {
        for text in ["off", "4/4x/100", "2/4x/75", "1/2x/50"] {
            let mode = parse_mode(text).unwrap_or_else(|| panic!("mode {text}"));
            if text == "off" {
                assert_eq!(mode, McrMode::off());
            }
        }
        for text in ["", "4/4/100", "5/4x/100", "4/4x/100/extra", "4/3x/100"] {
            assert!(parse_mode(text).is_none(), "{text:?} must be rejected");
        }
    }

    #[test]
    fn responses_are_single_line_json() {
        for line in [
            render_pong(),
            render_rejected(CODE_QUEUE_FULL, "queue-full"),
            render_timeout(Some("j1"), 25),
            render_error("nope"),
        ] {
            assert!(!line.contains('\n'), "multi-line response: {line}");
            let v = Json::parse(&line).expect("response parses");
            assert!(v.get("status").is_some());
        }
    }
}
