//! The service loop: a readiness-polled TCP acceptor feeding a bounded
//! job queue that a fixed worker pool drains.
//!
//! Connections are **not** thread-per-client: one poller thread owns
//! every socket in non-blocking mode, accumulates request bytes into
//! per-connection buffers, and dispatches complete lines. Thousands of
//! idle clients therefore cost a few buffers, not a few thousand
//! blocked threads, and a half-written request line cannot pin any
//! thread — it merely ages until the per-connection read deadline
//! ([`ServeConfig::read_deadline_ms`]) drops the connection.
//!
//! Flow control is explicit at every stage:
//!
//! * **Admission control** — oversized requests are rejected with code
//!   413 before any work is built (the point limit scales with the
//!   request's shard count, since a shard keeps only `1/count` of the
//!   grid); once the bounded queue is full, new jobs are shed with
//!   code 429 instead of queueing unboundedly. Request lines longer
//!   than [`ServeConfig::max_line_len`] drop the connection.
//! * **Deadlines** — a job carrying `deadline_ms` runs under a
//!   [`RunBudget`] with that wall-clock deadline; the simulation
//!   cooperatively aborts at the next budget-poll boundary (the
//!   event-wheel core crosses idle stretches in microseconds, so the
//!   overshoot is small) and the client receives `"status": "timeout"`.
//! * **Graceful shutdown** — a `shutdown` request flips the service
//!   into draining: new jobs are rejected with code 503, queued and
//!   in-flight jobs complete and deliver their responses, then the
//!   acceptor and workers exit. No accepted job ever loses its
//!   response.
//!
//! Results are memoized across requests in a shared [`ReportStore`]
//! keyed by the stable `SystemConfig::config_key`, so a repeated
//! request is answered without re-simulation. By default that tier is
//! the in-process [`ResultCache`]; with [`ServeConfig::cache_dir`] set
//! it is a persistent `mcr-store` [`ResultStore`], so a warm cache
//! survives restarts (the `stats` answer reports the tier, including
//! how many entries were already on disk when the service started).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use mcr_dram::{ReportStore, ResultCache, RunBudget, RunReport, Sweep};
use mcr_store::ResultStore;
use sim_json::Json;

use crate::protocol::{
    parse_request, render_error, render_job_ok, render_panic, render_pong, render_rejected,
    render_timeout, JobRequest, Request, CODE_DRAINING, CODE_QUEUE_FULL, CODE_TOO_LARGE,
};
use crate::telemetry::ServeTelemetry;

/// Service tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads draining the queue; `0` means one per core.
    pub workers: usize,
    /// Bounded queue capacity; a full queue sheds load (code 429).
    pub queue_cap: usize,
    /// Largest grid (in points) a single job may expand to (code 413).
    /// Scaled by the shard count for sharded jobs, which keep only
    /// `1/count` of the grid.
    pub max_points: usize,
    /// Largest trace length a single job may request (code 413).
    pub max_trace_len: usize,
    /// Directory for the persistent result store; `None` keeps the
    /// memo in-process only (lost on restart).
    pub cache_dir: Option<PathBuf>,
    /// How long a *partial* request line may stall before the
    /// connection is dropped. Idle connections with no buffered bytes
    /// never expire.
    pub read_deadline_ms: u64,
    /// Longest request line accepted before the connection is dropped
    /// with a protocol error.
    pub max_line_len: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_cap: 64,
            max_points: 512,
            max_trace_len: 2_000_000,
            cache_dir: None,
            read_deadline_ms: 10_000,
            max_line_len: 1 << 20,
        }
    }
}

/// The memo tier the workers publish into: in-process only, or the
/// disk-backed sharded store when a cache directory is configured.
enum CacheTier {
    /// In-process [`ResultCache`]; dies with the server.
    Memory(ResultCache),
    /// Persistent `mcr-store` [`ResultStore`]; survives restarts.
    Disk(ResultStore),
}

impl ReportStore for CacheTier {
    fn lookup(&self, key: u64) -> Option<RunReport> {
        match self {
            CacheTier::Memory(c) => c.lookup(key),
            CacheTier::Disk(s) => s.lookup(key),
        }
    }

    fn publish(&self, key: u64, report: &RunReport) {
        match self {
            CacheTier::Memory(c) => c.publish(key, report),
            CacheTier::Disk(s) => s.publish(key, report),
        }
    }
}

/// The half of a connection shared between the poller (reads) and
/// whoever owes it a reply (a worker thread, or the drain waiter).
///
/// Exactly one writer exists at a time: the poller writes only while
/// `busy` is clear, and a worker writes only while `busy` is set — the
/// flag is the hand-off. Writers temporarily flip the socket to
/// blocking mode; that is safe because the poller never touches a
/// `busy` connection.
struct ConnShared {
    stream: TcpStream,
    /// A job (or the shutdown drain) owns this connection; the poller
    /// must neither read nor write it until the reply lands.
    busy: AtomicBool,
    /// A write failed; the poller reaps the connection next pass.
    dead: AtomicBool,
}

/// Sends one reply line, restoring non-blocking mode afterwards. Any
/// failure marks the connection dead instead of panicking: a vanished
/// client loses its own response, never anyone else's.
fn write_line(conn: &ConnShared, line: &str) {
    let mut w = &conn.stream;
    let sent = conn.stream.set_nonblocking(false).is_ok()
        && writeln!(w, "{line}").and_then(|()| w.flush()).is_ok();
    let restored = conn.stream.set_nonblocking(true).is_ok();
    if !(sent && restored) {
        conn.dead.store(true, Ordering::Release);
    }
}

/// Poller-side connection state: the receive buffer and its freshness.
struct Conn {
    shared: Arc<ConnShared>,
    /// Received bytes not yet consumed as complete lines.
    buf: Vec<u8>,
    /// Last time the socket yielded bytes; ages partial lines toward
    /// the read deadline.
    last_data: Instant,
    /// The peer half-closed; reap once nothing is in flight.
    eof: bool,
}

/// An admitted job waiting for (or holding) a worker.
struct Job {
    req: JobRequest,
    sweep: Sweep,
    deadline: Option<Instant>,
    submitted: Instant,
    /// The connection owed the reply; `busy` is already set.
    conn: Arc<ConnShared>,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Job>,
    in_flight: usize,
    draining: bool,
    stopped: bool,
    /// The shutdown response left the server (or its client vanished):
    /// [`Server::run`] may now return and let the process exit.
    shutdown_acked: bool,
}

struct Shared {
    cfg: ServeConfig,
    addr: SocketAddr,
    state: Mutex<QueueState>,
    /// Signals workers: work available, or drain/stop flags changed.
    work_cv: Condvar,
    /// Signals the drain waiter: queue and in-flight both hit zero.
    idle_cv: Condvar,
    cache: CacheTier,
    /// Committed on-disk entries found when the store was opened — the
    /// warm inheritance from previous runs, announced in `stats`.
    warm_entries: u64,
    telemetry: Mutex<ServeTelemetry>,
}

/// Poison-tolerant lock: a panicking holder must not wedge the
/// service, and all guarded state stays consistent under the
/// lock-update-unlock pattern used here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn ms_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// The simulation service. [`Server::bind`] reserves the address,
/// [`Server::run`] serves until a `shutdown` request drains the
/// service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and resolves the worker count. Port `0`
    /// picks an ephemeral port; read it back with
    /// [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or the store-open failure when
    /// [`ServeConfig::cache_dir`] is set.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let cfg = ServeConfig { workers, ..cfg };
        let cache = match &cfg.cache_dir {
            Some(dir) => CacheTier::Disk(ResultStore::open(dir)?),
            None => CacheTier::Memory(ResultCache::new()),
        };
        let warm_entries = match &cache {
            CacheTier::Disk(store) => store.len(),
            CacheTier::Memory(_) => 0,
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                addr,
                state: Mutex::default(),
                work_cv: Condvar::new(),
                idle_cv: Condvar::new(),
                cache,
                warm_entries,
                telemetry: Mutex::default(),
            }),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The resolved configuration (worker count filled in).
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Committed entries already on disk when the store was opened.
    /// Always `0` without a [`ServeConfig::cache_dir`].
    pub fn warm_entries(&self) -> u64 {
        self.shared.warm_entries
    }

    /// Serves until a `shutdown` request drains the service, then
    /// returns the final telemetry snapshot. The calling thread is the
    /// connection poller.
    pub fn run(self) -> ServeTelemetry {
        let mut workers = Vec::with_capacity(self.shared.cfg.workers);
        for _ in 0..self.shared.cfg.workers {
            let shared = Arc::clone(&self.shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let accepting = self.listener.set_nonblocking(true).is_ok();
        let mut conns: Vec<Conn> = Vec::new();
        loop {
            if lock(&self.shared.state).stopped {
                break;
            }
            let mut progressed = false;
            if accepting {
                loop {
                    match self.listener.accept() {
                        Ok((stream, _)) => {
                            progressed = true;
                            if let Some(conn) = register_conn(&self.shared, stream) {
                                conns.push(conn);
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(_) => break, // WouldBlock: nothing pending
                    }
                }
            }
            conns.retain_mut(|c| service_conn(&self.shared, c, &mut progressed));
            if !progressed {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        for w in workers {
            let _ = w.join();
        }
        // Don't exit (and tear down the process) before the shutdown
        // reply has actually been delivered to its requester.
        let mut st = lock(&self.shared.state);
        while !st.shutdown_acked {
            st = self
                .shared
                .idle_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(st);
        lock(&self.shared.telemetry).clone()
    }
}

/// Counts and configures a freshly accepted socket for polling. A
/// socket that refuses non-blocking mode is dropped on the floor — it
/// cannot be serviced safely.
fn register_conn(shared: &Shared, stream: TcpStream) -> Option<Conn> {
    lock(&shared.telemetry).connections.inc();
    stream.set_nonblocking(true).ok()?;
    // Bound worker-side reply writes so a stuck client cannot wedge a
    // worker thread in the blocking write window.
    stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    Some(Conn {
        shared: Arc::new(ConnShared {
            stream,
            busy: AtomicBool::new(false),
            dead: AtomicBool::new(false),
        }),
        buf: Vec::new(),
        last_data: Instant::now(),
        eof: false,
    })
}

/// One poller pass over a connection: drain the socket, dispatch any
/// complete lines, apply the line-length and read-deadline guards.
/// Returns `false` to reap the connection.
fn service_conn(shared: &Arc<Shared>, conn: &mut Conn, progressed: &mut bool) -> bool {
    if conn.shared.dead.load(Ordering::Acquire) {
        return false;
    }
    if conn.shared.busy.load(Ordering::Acquire) {
        return true; // a worker owns the socket until the reply lands
    }
    let mut chunk = [0u8; 4096];
    loop {
        match (&conn.shared.stream).read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                *progressed = true;
                conn.last_data = Instant::now();
                conn.buf.extend_from_slice(&chunk[..n]);
                if conn.buf.len() > shared.cfg.max_line_len {
                    break; // guard below reaps; stop buffering
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(_) => return false,
        }
    }
    while !conn.shared.busy.load(Ordering::Acquire) {
        let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') else {
            break;
        };
        let rest = conn.buf.split_off(pos + 1);
        let line_bytes = std::mem::replace(&mut conn.buf, rest);
        let text = String::from_utf8_lossy(&line_bytes);
        let line = text.trim();
        if line.is_empty() {
            continue;
        }
        *progressed = true;
        handle_line(shared, &conn.shared, line);
        if conn.shared.dead.load(Ordering::Acquire) {
            return false;
        }
    }
    if conn.buf.len() > shared.cfg.max_line_len {
        let mut t = lock(&shared.telemetry);
        t.oversized_lines.inc();
        t.protocol_errors.inc();
        drop(t);
        write_line(
            &conn.shared,
            &render_error(&format!(
                "request line exceeded {} bytes",
                shared.cfg.max_line_len
            )),
        );
        return false;
    }
    if !conn.buf.is_empty() && ms_since(conn.last_data) > shared.cfg.read_deadline_ms {
        lock(&shared.telemetry).read_deadline_drops.inc();
        return false;
    }
    // A half-closed peer with no complete line left will never send
    // one; reap. (With `busy` set we never reach here, so a job's
    // reply still goes out before the reap.)
    if conn.eof {
        return false;
    }
    true
}

/// One worker: pop, simulate, respond, repeat; exit once the service
/// drains.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.in_flight += 1;
                    break job;
                }
                if st.draining || st.stopped {
                    return;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_job(shared, job);
        let mut st = lock(&shared.state);
        st.in_flight -= 1;
        if st.queue.is_empty() && st.in_flight == 0 {
            shared.idle_cv.notify_all();
        }
    }
}

/// Runs one admitted job to a response string and delivers it. Every
/// path answers: expired deadline, cooperative cancellation, a
/// panicking simulation (contained by `catch_unwind`, diagnosed by the
/// config_key it was holding), or success.
fn run_job(shared: &Shared, job: Job) {
    let queue_ms = ms_since(job.submitted);
    let deadline_ms = job.req.deadline_ms.unwrap_or(0);
    let reply = if job.deadline.is_some_and(|d| Instant::now() >= d) {
        lock(&shared.telemetry).timeouts.inc();
        render_timeout(job.req.id.as_deref(), deadline_ms)
    } else {
        let budget = job
            .deadline
            .map(|d| RunBudget::unbounded().with_deadline(d))
            .unwrap_or_default();
        let sim_start = Instant::now();
        // Tracks the config_key the worker was simulating, so a panic
        // is attributable from the client side. `MAX` = none started.
        let active_key = AtomicU64::new(u64::MAX);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            job.sweep
                .run_budgeted_traced(&shared.cache, &budget, &|key| {
                    active_key.store(key, Ordering::Relaxed)
                })
        }));
        let sim_ms = ms_since(sim_start);
        let service_ms = ms_since(job.submitted);
        let mut t = lock(&shared.telemetry);
        match outcome {
            Ok(Some(results)) => {
                t.completed.inc();
                t.sim_ms.record(sim_ms);
                t.service_ms.record(service_ms);
                drop(t);
                render_job_ok(&job.req, &results, queue_ms, service_ms)
            }
            Ok(None) => {
                t.timeouts.inc();
                render_timeout(job.req.id.as_deref(), deadline_ms)
            }
            Err(_) => {
                t.internal_errors.inc();
                t.worker_panics.inc();
                let key = active_key.load(Ordering::Relaxed);
                render_panic(job.req.id.as_deref(), (key != u64::MAX).then_some(key))
            }
        }
    };
    write_line(&job.conn, &reply);
    job.conn.busy.store(false, Ordering::Release);
}

/// Dispatches one parsed request line. Replies for everything except
/// jobs (and shutdown) are written inline from the poller thread.
fn handle_line(shared: &Arc<Shared>, conn: &Arc<ConnShared>, line: &str) {
    match parse_request(line) {
        Err(e) => {
            lock(&shared.telemetry).protocol_errors.inc();
            write_line(conn, &render_error(&e.to_string()));
        }
        Ok(Request::Ping) => write_line(conn, &render_pong()),
        Ok(Request::Stats) => write_line(conn, &stats_line(shared)),
        Ok(Request::Shutdown) => {
            conn.busy.store(true, Ordering::Release);
            spawn_drain_waiter(shared, Arc::clone(conn));
        }
        Ok(Request::Job(job)) => submit_job(shared, conn, *job),
    }
}

fn stats_line(shared: &Shared) -> String {
    let (depth, in_flight, draining) = {
        let st = lock(&shared.state);
        (st.queue.len() as u64, st.in_flight as u64, st.draining)
    };
    let t = lock(&shared.telemetry);
    Json::obj([
        ("status", Json::str("ok")),
        ("stats", t.to_json(depth, in_flight, draining)),
        ("store", store_json(shared)),
    ])
    .to_string()
}

/// The `store` member of a `stats` answer: which memo tier backs the
/// service, and (for the persistent tier) its occupancy and counters.
fn store_json(shared: &Shared) -> Json {
    match &shared.cache {
        CacheTier::Memory(_) => Json::obj([("backend", Json::str("memory"))]),
        CacheTier::Disk(store) => {
            let st = store.stats();
            Json::obj([
                ("backend", Json::str("disk")),
                ("shards", Json::from(st.shards as u64)),
                ("warm_entries", Json::from(shared.warm_entries)),
                ("disk_entries", Json::from(st.disk_entries())),
                ("hot_entries", Json::from(st.hot_entries as u64)),
                ("hits_hot", Json::from(st.hits_hot.get())),
                ("hits_disk", Json::from(st.hits_disk.get())),
                ("misses", Json::from(st.misses.get())),
                ("inserts", Json::from(st.inserts.get())),
                ("quarantined", Json::from(st.quarantined.get())),
                ("io_errors", Json::from(st.io_errors.get())),
            ])
        }
    }
}

/// Admission control and queueing. A rejected job is answered inline
/// from the poller; an admitted job marks the connection busy and the
/// worker that runs it writes the reply.
fn submit_job(shared: &Arc<Shared>, conn: &Arc<ConnShared>, req: JobRequest) {
    // Size limits first: cheap, and independent of queue state. A
    // sharded job keeps only 1/count of the grid, so the point limit
    // scales with the shard count (each shard is admitted separately
    // by the backend it lands on).
    let shard_count = req.shard.map_or(1, |(_, count)| count);
    if req.spec.point_count() > shared.cfg.max_points.saturating_mul(shard_count)
        || req.spec.trace_len() > shared.cfg.max_trace_len
    {
        lock(&shared.telemetry).rejected_too_large.inc();
        write_line(conn, &render_rejected(CODE_TOO_LARGE, "too-large"));
        return;
    }
    // Jobs run single-threaded inside a worker; the pool parallelizes
    // across requests, not within one, keeping throughput fair.
    let sweep = match req.spec.sweep(Some(1)) {
        Ok(s) => s,
        Err(e) => {
            lock(&shared.telemetry).protocol_errors.inc();
            write_line(conn, &render_error(&e.to_string()));
            return;
        }
    };
    let sweep = match req.shard {
        Some((index, count)) => sweep.shard(index, count),
        None => sweep,
    };
    let submitted = Instant::now();
    let deadline = req
        .deadline_ms
        .and_then(|ms| submitted.checked_add(Duration::from_millis(ms)));
    {
        let mut st = lock(&shared.state);
        if st.draining || st.stopped {
            drop(st);
            lock(&shared.telemetry).rejected_draining.inc();
            write_line(conn, &render_rejected(CODE_DRAINING, "draining"));
            return;
        }
        if st.queue.len() >= shared.cfg.queue_cap {
            drop(st);
            lock(&shared.telemetry).rejected_queue_full.inc();
            write_line(conn, &render_rejected(CODE_QUEUE_FULL, "queue-full"));
            return;
        }
        let depth = st.queue.len() as u64;
        conn.busy.store(true, Ordering::Release);
        st.queue.push_back(Job {
            req,
            sweep,
            deadline,
            submitted,
            conn: Arc::clone(conn),
        });
        drop(st);
        let mut t = lock(&shared.telemetry);
        t.accepted.inc();
        t.queue_depth.record(depth);
    }
    shared.work_cv.notify_one();
}

/// The drain protocol, off the poller thread so the poller keeps
/// answering `stats` while the drain progresses: flip to draining (new
/// jobs now shed with 503), wait until queue and in-flight hit zero,
/// stop the workers and the poller, then answer the requester.
fn spawn_drain_waiter(shared: &Arc<Shared>, conn: Arc<ConnShared>) {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || {
        lock(&shared.state).draining = true;
        shared.work_cv.notify_all();
        let mut st = lock(&shared.state);
        while !(st.queue.is_empty() && st.in_flight == 0) {
            st = shared
                .idle_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        st.stopped = true;
        drop(st);
        shared.work_cv.notify_all();
        let completed = lock(&shared.telemetry).completed.get();
        let reply = Json::obj([
            ("status", Json::str("ok")),
            ("drained", Json::from(true)),
            ("completed", Json::from(completed)),
        ])
        .to_string();
        write_line(&conn, &reply);
        conn.busy.store(false, Ordering::Release);
        lock(&shared.state).shutdown_acked = true;
        shared.idle_cv.notify_all();
    });
}
