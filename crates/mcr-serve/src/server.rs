//! The service loop: a TCP acceptor feeding a bounded job queue that a
//! fixed worker pool drains.
//!
//! Flow control is explicit at every stage:
//!
//! * **Admission control** — oversized requests are rejected with code
//!   413 before any work is built; once the bounded queue is full, new
//!   jobs are shed with code 429 instead of queueing unboundedly.
//! * **Deadlines** — a job carrying `deadline_ms` runs under a
//!   [`RunBudget`] with that wall-clock deadline; the simulation
//!   cooperatively aborts at the next budget-poll boundary (the
//!   event-wheel core crosses idle stretches in microseconds, so the
//!   overshoot is small) and the client receives `"status": "timeout"`.
//! * **Graceful shutdown** — a `shutdown` request flips the service
//!   into draining: new jobs are rejected with code 503, queued and
//!   in-flight jobs complete and deliver their responses, then the
//!   acceptor and workers exit. No accepted job ever loses its
//!   response.
//!
//! Results are memoized across requests in a shared [`ReportStore`]
//! keyed by the stable `SystemConfig::config_key`, so a repeated
//! request is answered without re-simulation. By default that tier is
//! the in-process [`ResultCache`]; with [`ServeConfig::cache_dir`] set
//! it is a persistent `mcr-store` [`ResultStore`], so a warm cache
//! survives restarts (the `stats` answer reports the tier, including
//! how many entries were already on disk when the service started).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use mcr_dram::{ReportStore, ResultCache, RunBudget, RunReport, Sweep};
use mcr_store::ResultStore;
use sim_json::Json;

use crate::protocol::{
    parse_request, render_error, render_job_ok, render_pong, render_rejected, render_timeout,
    JobRequest, Request, CODE_DRAINING, CODE_QUEUE_FULL, CODE_TOO_LARGE,
};
use crate::telemetry::ServeTelemetry;

/// Service tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads draining the queue; `0` means one per core.
    pub workers: usize,
    /// Bounded queue capacity; a full queue sheds load (code 429).
    pub queue_cap: usize,
    /// Largest grid (in points) a single job may expand to (code 413).
    pub max_points: usize,
    /// Largest trace length a single job may request (code 413).
    pub max_trace_len: usize,
    /// Directory for the persistent result store; `None` keeps the
    /// memo in-process only (lost on restart).
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_cap: 64,
            max_points: 512,
            max_trace_len: 2_000_000,
            cache_dir: None,
        }
    }
}

/// The memo tier the workers publish into: in-process only, or the
/// disk-backed sharded store when a cache directory is configured.
enum CacheTier {
    /// In-process [`ResultCache`]; dies with the server.
    Memory(ResultCache),
    /// Persistent `mcr-store` [`ResultStore`]; survives restarts.
    Disk(ResultStore),
}

impl ReportStore for CacheTier {
    fn lookup(&self, key: u64) -> Option<RunReport> {
        match self {
            CacheTier::Memory(c) => c.lookup(key),
            CacheTier::Disk(s) => s.lookup(key),
        }
    }

    fn publish(&self, key: u64, report: &RunReport) {
        match self {
            CacheTier::Memory(c) => c.publish(key, report),
            CacheTier::Disk(s) => s.publish(key, report),
        }
    }
}

/// An admitted job waiting for (or holding) a worker.
struct Job {
    req: JobRequest,
    sweep: Sweep,
    deadline: Option<Instant>,
    submitted: Instant,
    respond: mpsc::SyncSender<String>,
}

#[derive(Default)]
struct QueueState {
    queue: VecDeque<Job>,
    in_flight: usize,
    draining: bool,
    stopped: bool,
    /// The shutdown response left the server (or its client vanished):
    /// [`Server::run`] may now return and let the process exit.
    shutdown_acked: bool,
}

struct Shared {
    cfg: ServeConfig,
    addr: SocketAddr,
    state: Mutex<QueueState>,
    /// Signals workers: work available, or drain/stop flags changed.
    work_cv: Condvar,
    /// Signals the drain waiter: queue and in-flight both hit zero.
    idle_cv: Condvar,
    cache: CacheTier,
    /// Committed on-disk entries found when the store was opened — the
    /// warm inheritance from previous runs, announced in `stats`.
    warm_entries: u64,
    telemetry: Mutex<ServeTelemetry>,
}

/// Poison-tolerant lock: a panicking holder must not wedge the
/// service, and all guarded state stays consistent under the
/// lock-update-unlock pattern used here.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn ms_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// The simulation service. [`Server::bind`] reserves the address,
/// [`Server::run`] serves until a `shutdown` request drains the
/// service.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and resolves the worker count. Port `0`
    /// picks an ephemeral port; read it back with
    /// [`Server::local_addr`].
    ///
    /// # Errors
    ///
    /// Propagates the bind failure, or the store-open failure when
    /// [`ServeConfig::cache_dir`] is set.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let cfg = ServeConfig { workers, ..cfg };
        let cache = match &cfg.cache_dir {
            Some(dir) => CacheTier::Disk(ResultStore::open(dir)?),
            None => CacheTier::Memory(ResultCache::new()),
        };
        let warm_entries = match &cache {
            CacheTier::Disk(store) => store.len(),
            CacheTier::Memory(_) => 0,
        };
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                addr,
                state: Mutex::default(),
                work_cv: Condvar::new(),
                idle_cv: Condvar::new(),
                cache,
                warm_entries,
                telemetry: Mutex::default(),
            }),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The resolved configuration (worker count filled in).
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Committed entries already on disk when the store was opened.
    /// Always `0` without a [`ServeConfig::cache_dir`].
    pub fn warm_entries(&self) -> u64 {
        self.shared.warm_entries
    }

    /// Serves until a `shutdown` request drains the service, then
    /// returns the final telemetry snapshot.
    pub fn run(self) -> ServeTelemetry {
        let mut workers = Vec::with_capacity(self.shared.cfg.workers);
        for _ in 0..self.shared.cfg.workers {
            let shared = Arc::clone(&self.shared);
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        for conn in self.listener.incoming() {
            if lock(&self.shared.state).stopped {
                break;
            }
            let Ok(stream) = conn else { continue };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || handle_conn(&shared, stream));
        }
        for w in workers {
            let _ = w.join();
        }
        // Don't exit (and tear down connection threads with the
        // process) before the shutdown reply has actually been
        // delivered to its requester.
        let mut st = lock(&self.shared.state);
        while !st.shutdown_acked {
            st = self
                .shared
                .idle_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
        drop(st);
        lock(&self.shared.telemetry).clone()
    }
}

/// One worker: pop, simulate, respond, repeat; exit once the service
/// drains.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.in_flight += 1;
                    break job;
                }
                if st.draining || st.stopped {
                    return;
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        run_job(shared, job);
        let mut st = lock(&shared.state);
        st.in_flight -= 1;
        if st.queue.is_empty() && st.in_flight == 0 {
            shared.idle_cv.notify_all();
        }
    }
}

/// Runs one admitted job to a response string and delivers it. Every
/// path answers: expired deadline, cooperative cancellation, a
/// panicking simulation (contained by `catch_unwind`), or success.
fn run_job(shared: &Shared, job: Job) {
    let queue_ms = ms_since(job.submitted);
    let deadline_ms = job.req.deadline_ms.unwrap_or(0);
    let reply = if job.deadline.is_some_and(|d| Instant::now() >= d) {
        lock(&shared.telemetry).timeouts.inc();
        render_timeout(job.req.id.as_deref(), deadline_ms)
    } else {
        let budget = job
            .deadline
            .map(|d| RunBudget::unbounded().with_deadline(d))
            .unwrap_or_default();
        let sim_start = Instant::now();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            job.sweep.run_budgeted(&shared.cache, &budget)
        }));
        let sim_ms = ms_since(sim_start);
        let service_ms = ms_since(job.submitted);
        let mut t = lock(&shared.telemetry);
        match outcome {
            Ok(Some(results)) => {
                t.completed.inc();
                t.sim_ms.record(sim_ms);
                t.service_ms.record(service_ms);
                drop(t);
                render_job_ok(&job.req, &results, queue_ms, service_ms)
            }
            Ok(None) => {
                t.timeouts.inc();
                render_timeout(job.req.id.as_deref(), deadline_ms)
            }
            Err(_) => {
                t.internal_errors.inc();
                render_error("internal: simulation panicked")
            }
        }
    };
    // A vanished client loses its own response, never anyone else's.
    let _ = job.respond.send(reply);
}

/// Per-connection loop: read a request line, answer it, repeat until
/// the peer hangs up.
fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    lock(&shared.telemetry).connections.inc();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let (reply, was_shutdown) = handle_line(shared, line.trim());
        let wrote = writeln!(writer, "{reply}").and_then(|()| writer.flush());
        if was_shutdown {
            lock(&shared.state).shutdown_acked = true;
            shared.idle_cv.notify_all();
        }
        if wrote.is_err() {
            return;
        }
    }
}

fn handle_line(shared: &Arc<Shared>, line: &str) -> (String, bool) {
    match parse_request(line) {
        Err(e) => {
            lock(&shared.telemetry).protocol_errors.inc();
            (render_error(&e.to_string()), false)
        }
        Ok(Request::Ping) => (render_pong(), false),
        Ok(Request::Stats) => (stats_line(shared), false),
        Ok(Request::Shutdown) => (shutdown(shared), true),
        Ok(Request::Job(job)) => (submit_job(shared, *job), false),
    }
}

fn stats_line(shared: &Shared) -> String {
    let (depth, in_flight, draining) = {
        let st = lock(&shared.state);
        (st.queue.len() as u64, st.in_flight as u64, st.draining)
    };
    let t = lock(&shared.telemetry);
    Json::obj([
        ("status", Json::str("ok")),
        ("stats", t.to_json(depth, in_flight, draining)),
        ("store", store_json(shared)),
    ])
    .to_string()
}

/// The `store` member of a `stats` answer: which memo tier backs the
/// service, and (for the persistent tier) its occupancy and counters.
fn store_json(shared: &Shared) -> Json {
    match &shared.cache {
        CacheTier::Memory(_) => Json::obj([("backend", Json::str("memory"))]),
        CacheTier::Disk(store) => {
            let st = store.stats();
            Json::obj([
                ("backend", Json::str("disk")),
                ("shards", Json::from(st.shards as u64)),
                ("warm_entries", Json::from(shared.warm_entries)),
                ("disk_entries", Json::from(st.disk_entries())),
                ("hot_entries", Json::from(st.hot_entries as u64)),
                ("hits_hot", Json::from(st.hits_hot.get())),
                ("hits_disk", Json::from(st.hits_disk.get())),
                ("misses", Json::from(st.misses.get())),
                ("inserts", Json::from(st.inserts.get())),
                ("quarantined", Json::from(st.quarantined.get())),
                ("io_errors", Json::from(st.io_errors.get())),
            ])
        }
    }
}

/// Admission control and queueing; blocks until the job's response is
/// ready (the per-connection protocol is strictly request/response).
fn submit_job(shared: &Arc<Shared>, req: JobRequest) -> String {
    // Size limits first: cheap, and independent of queue state.
    if req.spec.point_count() > shared.cfg.max_points
        || req.spec.trace_len() > shared.cfg.max_trace_len
    {
        lock(&shared.telemetry).rejected_too_large.inc();
        return render_rejected(CODE_TOO_LARGE, "too-large");
    }
    // Jobs run single-threaded inside a worker; the pool parallelizes
    // across requests, not within one, keeping throughput fair.
    let sweep = match req.spec.sweep(Some(1)) {
        Ok(s) => s,
        Err(e) => {
            lock(&shared.telemetry).protocol_errors.inc();
            return render_error(&e.to_string());
        }
    };
    let submitted = Instant::now();
    let deadline = req
        .deadline_ms
        .and_then(|ms| submitted.checked_add(Duration::from_millis(ms)));
    let (tx, rx) = mpsc::sync_channel(1);
    {
        let mut st = lock(&shared.state);
        if st.draining || st.stopped {
            drop(st);
            lock(&shared.telemetry).rejected_draining.inc();
            return render_rejected(CODE_DRAINING, "draining");
        }
        if st.queue.len() >= shared.cfg.queue_cap {
            drop(st);
            lock(&shared.telemetry).rejected_queue_full.inc();
            return render_rejected(CODE_QUEUE_FULL, "queue-full");
        }
        let depth = st.queue.len() as u64;
        st.queue.push_back(Job {
            req,
            sweep,
            deadline,
            submitted,
            respond: tx,
        });
        drop(st);
        let mut t = lock(&shared.telemetry);
        t.accepted.inc();
        t.queue_depth.record(depth);
    }
    shared.work_cv.notify_one();
    match rx.recv() {
        Ok(reply) => reply,
        // Unreachable with catch_unwind in place, but typed anyway.
        Err(_) => render_error("internal: worker dropped the job"),
    }
}

/// The drain protocol: flip to draining (new jobs now shed with 503),
/// wait until queue and in-flight hit zero, stop the workers and the
/// acceptor, then answer. Runs on the requesting connection's thread.
fn shutdown(shared: &Arc<Shared>) -> String {
    lock(&shared.state).draining = true;
    shared.work_cv.notify_all();
    let mut st = lock(&shared.state);
    while !(st.queue.is_empty() && st.in_flight == 0) {
        st = shared
            .idle_cv
            .wait(st)
            .unwrap_or_else(PoisonError::into_inner);
    }
    st.stopped = true;
    drop(st);
    shared.work_cv.notify_all();
    // Unblock the accept loop with a loopback connection; if the
    // listener is already gone the connect simply fails.
    let _ = TcpStream::connect(shared.addr);
    let completed = lock(&shared.telemetry).completed.get();
    Json::obj([
        ("status", Json::str("ok")),
        ("drained", Json::from(true)),
        ("completed", Json::from(completed)),
    ])
    .to_string()
}
