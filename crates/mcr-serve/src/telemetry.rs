//! Service-side observability, built from the same primitives
//! (`mcr-telemetry` counters and power-of-two histograms) as the
//! simulator's own instrumentation, so the `stats` answer and the
//! shutdown summary are deterministic integer state.

use mcr_telemetry::{Counter, LatencyHistogram};
use sim_json::Json;

/// Counters and histograms the server maintains across its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeTelemetry {
    /// Client connections accepted.
    pub connections: Counter,
    /// Jobs admitted into the queue.
    pub accepted: Counter,
    /// Jobs that finished with an `ok` response.
    pub completed: Counter,
    /// Jobs shed because the queue was full (code 429).
    pub rejected_queue_full: Counter,
    /// Jobs refused because the service was draining (code 503).
    pub rejected_draining: Counter,
    /// Jobs refused by the size limits (code 413).
    pub rejected_too_large: Counter,
    /// Jobs cancelled by their deadline.
    pub timeouts: Counter,
    /// Request lines that failed to parse or validate.
    pub protocol_errors: Counter,
    /// Jobs whose simulation failed internally.
    pub internal_errors: Counter,
    /// Jobs whose worker panicked inside `catch_unwind` (a subset of
    /// `internal_errors`, kept separate so panics are diagnosable).
    pub worker_panics: Counter,
    /// Connections dropped because a partial request line stalled past
    /// the per-connection read deadline.
    pub read_deadline_drops: Counter,
    /// Connections dropped because a request line exceeded the
    /// configured maximum length.
    pub oversized_lines: Counter,
    /// Queue depth observed at each admission (before the push).
    pub queue_depth: LatencyHistogram,
    /// Admission-to-response service latency, in milliseconds.
    pub service_ms: LatencyHistogram,
    /// Pure simulation wall time per job, in milliseconds.
    pub sim_ms: LatencyHistogram,
}

/// Renders a histogram the way the simulator's JSON reports do:
/// count/sum plus resolved percentiles (`null` when empty).
fn histogram_json(h: &LatencyHistogram) -> Json {
    let pct = |v: Option<u64>| v.map(Json::from).unwrap_or(Json::Null);
    Json::obj([
        ("count", Json::from(h.count())),
        ("sum", Json::from(h.sum())),
        ("p50", pct(h.p50())),
        ("p95", pct(h.p95())),
        ("max", pct(h.max())),
    ])
}

impl ServeTelemetry {
    /// The `stats` response body: lifetime counters plus the live queue
    /// state supplied by the server.
    pub fn to_json(&self, queue_depth_now: u64, in_flight: u64, draining: bool) -> Json {
        Json::obj([
            ("connections", Json::from(self.connections.get())),
            ("accepted", Json::from(self.accepted.get())),
            ("completed", Json::from(self.completed.get())),
            (
                "rejected_queue_full",
                Json::from(self.rejected_queue_full.get()),
            ),
            (
                "rejected_draining",
                Json::from(self.rejected_draining.get()),
            ),
            (
                "rejected_too_large",
                Json::from(self.rejected_too_large.get()),
            ),
            ("timeouts", Json::from(self.timeouts.get())),
            ("protocol_errors", Json::from(self.protocol_errors.get())),
            ("internal_errors", Json::from(self.internal_errors.get())),
            ("worker_panics", Json::from(self.worker_panics.get())),
            (
                "read_deadline_drops",
                Json::from(self.read_deadline_drops.get()),
            ),
            ("oversized_lines", Json::from(self.oversized_lines.get())),
            ("queue_depth_now", Json::from(queue_depth_now)),
            ("in_flight", Json::from(in_flight)),
            ("draining", Json::from(draining)),
            ("queue_depth", histogram_json(&self.queue_depth)),
            ("service_ms", histogram_json(&self.service_ms)),
            ("sim_ms", histogram_json(&self.sim_ms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_json_carries_counters_and_histograms() {
        let mut t = ServeTelemetry::default();
        t.accepted.inc();
        t.completed.inc();
        t.service_ms.record(12);
        t.service_ms.record(40);
        let v = t.to_json(3, 1, false);
        assert_eq!(v.get("accepted").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("queue_depth_now").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("draining").and_then(Json::as_bool), Some(false));
        let svc = v.get("service_ms").expect("histogram present");
        assert_eq!(svc.get("count").and_then(Json::as_u64), Some(2));
        assert!(svc.get("p50").and_then(Json::as_u64).is_some());
        // Single-line, reparsable.
        let line = v.to_string();
        assert!(!line.contains('\n'));
        assert!(Json::parse(&line).is_ok());
    }
}
