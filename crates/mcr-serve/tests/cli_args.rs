//! CLI hardening: every bad flag combination exits with a readable
//! `error:` line and a non-zero `ExitCode` — no panics, no silent
//! defaults — across the legacy flags and the `serve`/`submit`
//! subcommands.

use std::process::Command;

struct Outcome {
    code: i32,
    stderr: String,
}

fn run(args: &[&str]) -> Outcome {
    let out = Command::new(env!("CARGO_BIN_EXE_mcr_sim"))
        .args(args)
        .output()
        .expect("binary runs");
    Outcome {
        code: out.status.code().expect("exit code, not a signal"),
        stderr: String::from_utf8_lossy(&out.stderr).into_owned(),
    }
}

fn assert_usage_error(args: &[&str], needle: &str) {
    let o = run(args);
    assert_eq!(o.code, 1, "{args:?} must exit 1, stderr: {}", o.stderr);
    assert!(
        o.stderr.contains(needle),
        "{args:?} stderr must mention {needle:?}, got: {}",
        o.stderr
    );
    assert!(
        o.stderr.contains("error:"),
        "{args:?} must print an error line: {}",
        o.stderr
    );
}

#[test]
fn unknown_flags_fail_with_exit_one() {
    assert_usage_error(&["--bogus"], "unknown flag");
    assert_usage_error(&["serve", "--bogus"], "unknown flag");
    assert_usage_error(&["submit", "--bogus"], "unknown flag");
}

#[test]
fn missing_values_name_the_flag() {
    // Existing flags.
    assert_usage_error(&["--len"], "--len needs a value");
    assert_usage_error(&["--workload"], "--workload needs a value");
    // New subcommand flags.
    assert_usage_error(&["serve", "--workers"], "--workers needs a value");
    assert_usage_error(&["serve", "--queue-cap"], "--queue-cap needs a value");
    assert_usage_error(&["submit", "--deadline-ms"], "--deadline-ms needs a value");
}

#[test]
fn malformed_values_are_typed_errors() {
    assert_usage_error(&["--workload", "libq", "--len", "many"], "bad --len");
    assert_usage_error(&["--workload", "libq", "--mode", "zzz"], "bad mode");
    assert_usage_error(
        &["--workload", "libq", "--mechanisms", "9"],
        "mechanisms case must be 1-4",
    );
    assert_usage_error(&["serve", "--workers", "lots"], "bad --workers");
    assert_usage_error(
        &["serve", "--queue-cap", "0"],
        "--queue-cap must be at least 1",
    );
    assert_usage_error(
        &["submit", "x.json", "--deadline-ms", "soon"],
        "bad --deadline-ms",
    );
}

#[test]
fn conflicting_or_missing_targets_are_rejected() {
    assert_usage_error(&[], "need --workload or --mix");
    assert_usage_error(
        &["--workload", "libq", "--mix", "mix01"],
        "mutually exclusive",
    );
    assert_usage_error(&["submit"], "needs a request file");
    assert_usage_error(&["submit", "a.json", "--shutdown"], "mutually exclusive");
    assert_usage_error(&["submit", "a.json", "b.json"], "exactly one request file");
}

#[test]
fn submit_reports_unreachable_server_and_unreadable_files() {
    let o = run(&["submit", "/no/such/request.json"]);
    assert_eq!(o.code, 1);
    assert!(o.stderr.contains("cannot read"), "{}", o.stderr);
    // A port no service listens on (reserved, never assigned here).
    let o = run(&["submit", "--ping", "--addr", "127.0.0.1:1"]);
    assert_eq!(o.code, 1);
    assert!(o.stderr.contains("cannot reach"), "{}", o.stderr);
}

#[test]
fn help_exits_cleanly_for_every_entry_point() {
    for args in [
        &["--help"][..],
        &["serve", "--help"][..],
        &["submit", "--help"][..],
    ] {
        let o = run(args);
        assert_eq!(o.code, 0, "{args:?} help must exit 0");
        assert!(o.stderr.contains("usage:"), "{args:?}: {}", o.stderr);
        assert!(
            o.stderr.contains("serve options:"),
            "{args:?}: {}",
            o.stderr
        );
    }
}
