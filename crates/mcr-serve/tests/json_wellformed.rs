//! The in-tree parser validating the workspace's hand-rolled JSON
//! emitters: everything the simulator writes (`telemetry_to_json`,
//! `SweepResults::to_json`, the golden snapshots on disk) must parse
//! back through `sim-json` — the same codec the service uses on the
//! wire.

use mcr_dram::{telemetry_to_json, McrMode, SweepBuilder, System, SystemConfig, Telemetry};
use sim_json::Json;

#[test]
fn telemetry_emitter_output_parses() {
    // A real instrumented run, so the histograms are populated.
    let cfg = SystemConfig::single_core("libq", 3_000).with_mode(McrMode::headline());
    let report = System::try_build(&cfg).expect("valid config").run();
    let doc = telemetry_to_json(&report.telemetry);
    let v = Json::parse(&doc).unwrap_or_else(|e| panic!("telemetry JSON is malformed: {e}\n{doc}"));
    let sched = v.get("sched").expect("sched section");
    assert!(
        sched.get("cas_read").and_then(Json::as_u64).unwrap_or(0) > 0,
        "instrumented run must record reads"
    );
    assert!(
        v.get("read_latency")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "latency histogram must be populated"
    );

    // The all-default (empty) telemetry exercises the null percentiles.
    let empty = telemetry_to_json(&Telemetry::default());
    Json::parse(&empty).unwrap_or_else(|e| panic!("empty telemetry JSON is malformed: {e}"));
}

#[test]
fn sweep_results_emitter_output_parses() {
    let results = SweepBuilder::new(1_200)
        .workload("libq")
        .mode(McrMode::off())
        .mode(McrMode::headline())
        .jobs(1)
        .build()
        .expect("valid grid")
        .run();
    let doc = results.to_json();
    let v = Json::parse(&doc).unwrap_or_else(|e| panic!("sweep JSON is malformed: {e}\n{doc}"));
    let points = v
        .get("points")
        .and_then(Json::as_array)
        .expect("points array");
    assert_eq!(points.len(), 2);
    for p in points {
        // The emitter writes cache keys as fixed-width hex strings.
        let key = p.get("key").and_then(Json::as_str).expect("key field");
        assert_eq!(key.len(), 16, "16-hex-digit key, got {key:?}");
        assert!(p.get("exec_cpu_cycles").and_then(Json::as_u64).is_some());
    }
}

#[test]
fn every_golden_snapshot_parses() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/goldens");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(dir).expect("goldens directory exists") {
        let path = entry.expect("directory entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable golden");
        let v = Json::parse(&text)
            .unwrap_or_else(|e| panic!("golden {} is malformed: {e}", path.display()));
        assert!(
            v.as_object().is_some() || v.as_array().is_some(),
            "golden {} must be a container",
            path.display()
        );
        // Round-trip through the codec stays parseable (the serializer
        // normalizes whitespace, so only semantic stability is checked).
        let again = Json::parse(&v.to_string()).expect("re-serialized golden parses");
        assert_eq!(
            again,
            v,
            "golden {} drifts through the codec",
            path.display()
        );
        checked += 1;
    }
    assert!(checked > 0, "no golden snapshots found in {dir}");
}
