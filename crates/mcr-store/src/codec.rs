//! Lossless [`RunReport`] ↔ [`Json`] codec.
//!
//! The store persists *full* reports — every counter, histogram and
//! energy figure — and the determinism suite demands that a report
//! pulled off disk compares equal (`==`) to the one the simulator
//! produced. Three representational traps make that non-trivial with a
//! JSON codec whose only number type is `f64`:
//!
//! * **Full-range `u64`s.** Counters can saturate at `u64::MAX`, and an
//!   empty [`LatencyHistogram`] carries a `u64::MAX` min sentinel —
//!   both beyond the 2^53 window an `f64` holds exactly. Every `u64`
//!   goes through [`Json::from_u64_lossless`], which falls back to a
//!   decimal string past that window.
//! * **Histogram internals.** `count`/`sum`/`min`/`max` are not
//!   derivable from the buckets, so histograms are persisted via
//!   [`LatencyHistogram::raw_parts`] and rebuilt with
//!   [`LatencyHistogram::from_raw_parts`], sentinels and all.
//! * **Non-finite floats.** JSON has no `NaN`/`Infinity` literals (the
//!   serializer renders them as `null`); the codec sidesteps the hole
//!   by encoding non-finite values as the strings `"NaN"`, `"inf"` and
//!   `"-inf"`. Finite values ride the serializer's shortest-round-trip
//!   formatting and re-parse to the identical bits.
//!
//! Decoding is total and typed: any missing, mistyped or out-of-range
//! field yields a [`CodecError`] naming the path, which the store maps
//! to quarantine-and-recompute.

use mcr_dram::{
    BankCommandCounts, PointResult, ReliabilityReport, RowCacheStats, RunReport, Telemetry,
};
use mcr_telemetry::{LatencyHistogram, HISTOGRAM_BUCKETS};
use mem_controller::{ControllerStats, CtlTelemetry, RefreshStats};
use sim_json::Json;
use std::time::Duration;

/// Why a JSON document failed to decode back into a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Dotted path of the offending field (e.g. `telemetry.act_to_data.sum`).
    pub path: String,
    /// What was wrong with it.
    pub reason: &'static str,
}

impl CodecError {
    fn new(path: impl Into<String>, reason: &'static str) -> Self {
        CodecError {
            path: path.into(),
            reason,
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode failed at `{}`: {}", self.path, self.reason)
    }
}

impl std::error::Error for CodecError {}

// ---- scalar helpers ----------------------------------------------------

fn ju(n: u64) -> Json {
    Json::from_u64_lossless(n)
}

fn jf(x: f64) -> Json {
    if x.is_finite() {
        Json::Num(x)
    } else if x.is_nan() {
        Json::str("NaN")
    } else if x > 0.0 {
        Json::str("inf")
    } else {
        Json::str("-inf")
    }
}

fn member<'a>(j: &'a Json, key: &str, path: &str) -> Result<&'a Json, CodecError> {
    match j.get(key) {
        Some(v) => Ok(v),
        None => Err(CodecError::new(format!("{path}.{key}"), "missing member")),
    }
}

fn du(j: &Json, key: &str, path: &str) -> Result<u64, CodecError> {
    member(j, key, path)?
        .as_u64_lossless()
        .ok_or_else(|| CodecError::new(format!("{path}.{key}"), "not a lossless u64"))
}

fn df(j: &Json, key: &str, path: &str) -> Result<f64, CodecError> {
    let v = member(j, key, path)?;
    decode_f64(v).ok_or_else(|| CodecError::new(format!("{path}.{key}"), "not an f64"))
}

fn decode_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n),
        Json::Str(s) => match s.as_str() {
            "NaN" => Some(f64::NAN),
            "inf" => Some(f64::INFINITY),
            "-inf" => Some(f64::NEG_INFINITY),
            _ => None,
        },
        _ => None,
    }
}

fn dbool(j: &Json, key: &str, path: &str) -> Result<bool, CodecError> {
    member(j, key, path)?
        .as_bool()
        .ok_or_else(|| CodecError::new(format!("{path}.{key}"), "not a bool"))
}

fn darr<'a>(j: &'a Json, key: &str, path: &str) -> Result<&'a [Json], CodecError> {
    member(j, key, path)?
        .as_array()
        .ok_or_else(|| CodecError::new(format!("{path}.{key}"), "not an array"))
}

// ---- histograms --------------------------------------------------------

fn hist_to_json(h: &LatencyHistogram) -> Json {
    let (buckets, count, sum, min, max) = h.raw_parts();
    let sparse: Vec<Json> = buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(i, &n)| Json::Arr(vec![ju(i as u64), ju(n)]))
        .collect();
    Json::obj([
        ("buckets", Json::Arr(sparse)),
        ("count", ju(count)),
        ("sum", ju(sum)),
        ("min", ju(min)),
        ("max", ju(max)),
    ])
}

fn hist_from_json(j: &Json, path: &str) -> Result<LatencyHistogram, CodecError> {
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    for (slot, pair) in darr(j, "buckets", path)?.iter().enumerate() {
        let bad = || CodecError::new(format!("{path}.buckets[{slot}]"), "bad [index, count] pair");
        let pair = pair.as_array().ok_or_else(bad)?;
        let (i, n) = match pair {
            [i, n] => (
                i.as_u64_lossless().ok_or_else(bad)?,
                n.as_u64_lossless().ok_or_else(bad)?,
            ),
            _ => return Err(bad()),
        };
        let i = usize::try_from(i).ok().filter(|&i| i < HISTOGRAM_BUCKETS);
        match i {
            Some(i) => buckets[i] = n,
            None => {
                return Err(CodecError::new(
                    format!("{path}.buckets[{slot}]"),
                    "bucket index out of range",
                ))
            }
        }
    }
    Ok(LatencyHistogram::from_raw_parts(
        buckets,
        du(j, "count", path)?,
        du(j, "sum", path)?,
        du(j, "min", path)?,
        du(j, "max", path)?,
    ))
}

fn counter_to_json(c: &mcr_telemetry::Counter) -> Json {
    ju(c.get())
}

fn counter_from(j: &Json, key: &str, path: &str) -> Result<mcr_telemetry::Counter, CodecError> {
    let mut c = mcr_telemetry::Counter::new();
    c.add(du(j, key, path)?);
    Ok(c)
}

// ---- report sections ---------------------------------------------------

fn controller_to_json(c: &ControllerStats) -> Json {
    Json::obj([
        ("reads_done", ju(c.reads_done)),
        ("writes_done", ju(c.writes_done)),
        ("read_latency_sum", ju(c.read_latency_sum)),
        ("row_hits", ju(c.row_hits)),
        ("row_misses", ju(c.row_misses)),
        ("row_conflicts", ju(c.row_conflicts)),
        ("drain_cycles", ju(c.drain_cycles)),
        (
            "refresh",
            Json::obj([
                ("normal", ju(c.refresh.normal)),
                ("fast", ju(c.refresh.fast)),
                ("skipped", ju(c.refresh.skipped)),
                ("dropped", ju(c.refresh.dropped)),
                ("late", ju(c.refresh.late)),
            ]),
        ),
        ("retention_retries", ju(c.retention_retries)),
        ("guardband_degrades", ju(c.guardband_degrades)),
        ("guardband_rearms", ju(c.guardband_rearms)),
        ("guardband_degraded_cycles", ju(c.guardband_degraded_cycles)),
    ])
}

fn controller_from_json(j: &Json, path: &str) -> Result<ControllerStats, CodecError> {
    let r = member(j, "refresh", path)?;
    let rp = format!("{path}.refresh");
    Ok(ControllerStats {
        reads_done: du(j, "reads_done", path)?,
        writes_done: du(j, "writes_done", path)?,
        read_latency_sum: du(j, "read_latency_sum", path)?,
        row_hits: du(j, "row_hits", path)?,
        row_misses: du(j, "row_misses", path)?,
        row_conflicts: du(j, "row_conflicts", path)?,
        drain_cycles: du(j, "drain_cycles", path)?,
        refresh: RefreshStats {
            normal: du(r, "normal", &rp)?,
            fast: du(r, "fast", &rp)?,
            skipped: du(r, "skipped", &rp)?,
            dropped: du(r, "dropped", &rp)?,
            late: du(r, "late", &rp)?,
        },
        retention_retries: du(j, "retention_retries", path)?,
        guardband_degrades: du(j, "guardband_degrades", path)?,
        guardband_rearms: du(j, "guardband_rearms", path)?,
        guardband_degraded_cycles: du(j, "guardband_degraded_cycles", path)?,
    })
}

fn ctl_telemetry_to_json(t: &CtlTelemetry) -> Json {
    Json::obj([
        ("read_queue_depth", hist_to_json(&t.read_queue_depth)),
        ("write_queue_depth", hist_to_json(&t.write_queue_depth)),
        ("read_latency", hist_to_json(&t.read_latency)),
        ("sched_cas_read", counter_to_json(&t.sched_cas_read)),
        ("sched_cas_write", counter_to_json(&t.sched_cas_write)),
        ("sched_activates", counter_to_json(&t.sched_activates)),
        ("sched_precharges", counter_to_json(&t.sched_precharges)),
        ("sched_refreshes", counter_to_json(&t.sched_refreshes)),
        ("retention_retries", counter_to_json(&t.retention_retries)),
        ("guardband_degrades", counter_to_json(&t.guardband_degrades)),
        ("guardband_rearms", counter_to_json(&t.guardband_rearms)),
    ])
}

fn ctl_telemetry_from_json(j: &Json, path: &str) -> Result<CtlTelemetry, CodecError> {
    Ok(CtlTelemetry {
        read_queue_depth: hist_from_json(member(j, "read_queue_depth", path)?, path)?,
        write_queue_depth: hist_from_json(member(j, "write_queue_depth", path)?, path)?,
        read_latency: hist_from_json(member(j, "read_latency", path)?, path)?,
        sched_cas_read: counter_from(j, "sched_cas_read", path)?,
        sched_cas_write: counter_from(j, "sched_cas_write", path)?,
        sched_activates: counter_from(j, "sched_activates", path)?,
        sched_precharges: counter_from(j, "sched_precharges", path)?,
        sched_refreshes: counter_from(j, "sched_refreshes", path)?,
        retention_retries: counter_from(j, "retention_retries", path)?,
        guardband_degrades: counter_from(j, "guardband_degrades", path)?,
        guardband_rearms: counter_from(j, "guardband_rearms", path)?,
    })
}

fn telemetry_to_json(t: &Telemetry) -> Json {
    let banks: Vec<Json> = t
        .banks
        .iter()
        .map(|b| {
            Json::Arr(vec![
                ju(b.channel as u64),
                ju(b.rank as u64),
                ju(b.bank as u64),
                ju(b.activates),
                ju(b.reads),
                ju(b.writes),
                ju(b.precharges),
            ])
        })
        .collect();
    Json::obj([
        ("banks", Json::Arr(banks)),
        ("refreshes_normal", ju(t.refreshes_normal)),
        ("refreshes_fast", ju(t.refreshes_fast)),
        ("powerdown_entries", ju(t.powerdown_entries)),
        ("mode_changes", ju(t.mode_changes)),
        ("act_to_data", hist_to_json(&t.act_to_data)),
        ("controller", ctl_telemetry_to_json(&t.controller)),
        ("core_read_latency", hist_to_json(&t.core_read_latency)),
        ("retention_checks", ju(t.retention_checks)),
        ("retention_violations", ju(t.retention_violations)),
        ("retention_escapes", ju(t.retention_escapes)),
        (
            "retention_detect_latency",
            hist_to_json(&t.retention_detect_latency),
        ),
    ])
}

fn telemetry_from_json(j: &Json, path: &str) -> Result<Telemetry, CodecError> {
    let mut banks = Vec::new();
    for (slot, row) in darr(j, "banks", path)?.iter().enumerate() {
        let bad = || CodecError::new(format!("{path}.banks[{slot}]"), "bad 7-tuple");
        let row = row.as_array().ok_or_else(bad)?;
        let v: Vec<u64> = row
            .iter()
            .map(Json::as_u64_lossless)
            .collect::<Option<Vec<u64>>>()
            .ok_or_else(bad)?;
        let [channel, rank, bank, activates, reads, writes, precharges] = v[..] else {
            return Err(bad());
        };
        banks.push(BankCommandCounts {
            channel: usize::try_from(channel).map_err(|_| bad())?,
            rank: usize::try_from(rank).map_err(|_| bad())?,
            bank: usize::try_from(bank).map_err(|_| bad())?,
            activates,
            reads,
            writes,
            precharges,
        });
    }
    Ok(Telemetry {
        banks,
        refreshes_normal: du(j, "refreshes_normal", path)?,
        refreshes_fast: du(j, "refreshes_fast", path)?,
        powerdown_entries: du(j, "powerdown_entries", path)?,
        mode_changes: du(j, "mode_changes", path)?,
        act_to_data: hist_from_json(member(j, "act_to_data", path)?, path)?,
        controller: ctl_telemetry_from_json(
            member(j, "controller", path)?,
            &format!("{path}.controller"),
        )?,
        core_read_latency: hist_from_json(member(j, "core_read_latency", path)?, path)?,
        retention_checks: du(j, "retention_checks", path)?,
        retention_violations: du(j, "retention_violations", path)?,
        retention_escapes: du(j, "retention_escapes", path)?,
        retention_detect_latency: hist_from_json(
            member(j, "retention_detect_latency", path)?,
            path,
        )?,
    })
}

fn reliability_to_json(r: &ReliabilityReport) -> Json {
    Json::obj([
        ("fault_injection", Json::Bool(r.fault_injection)),
        ("fault_seed", ju(r.fault_seed)),
        ("retention_retries", ju(r.retention_retries)),
        ("refresh_dropped", ju(r.refresh_dropped)),
        ("refresh_late", ju(r.refresh_late)),
        ("guardband_degrades", ju(r.guardband_degrades)),
        ("guardband_rearms", ju(r.guardband_rearms)),
        ("guardband_degraded_cycles", ju(r.guardband_degraded_cycles)),
        ("retention_checks", ju(r.retention_checks)),
        ("retention_violations", ju(r.retention_violations)),
        ("retention_escapes", ju(r.retention_escapes)),
    ])
}

fn reliability_from_json(j: &Json, path: &str) -> Result<ReliabilityReport, CodecError> {
    Ok(ReliabilityReport {
        fault_injection: dbool(j, "fault_injection", path)?,
        fault_seed: du(j, "fault_seed", path)?,
        retention_retries: du(j, "retention_retries", path)?,
        refresh_dropped: du(j, "refresh_dropped", path)?,
        refresh_late: du(j, "refresh_late", path)?,
        guardband_degrades: du(j, "guardband_degrades", path)?,
        guardband_rearms: du(j, "guardband_rearms", path)?,
        guardband_degraded_cycles: du(j, "guardband_degraded_cycles", path)?,
        retention_checks: du(j, "retention_checks", path)?,
        retention_violations: du(j, "retention_violations", path)?,
        retention_escapes: du(j, "retention_escapes", path)?,
    })
}

// ---- top level ---------------------------------------------------------

/// Encodes a full [`RunReport`] — every scalar, histogram and section —
/// as a [`Json`] value that [`report_from_json`] inverts exactly.
pub fn report_to_json(r: &RunReport) -> Json {
    Json::obj([
        ("exec_cpu_cycles", ju(r.exec_cpu_cycles)),
        (
            "per_core_cpu_cycles",
            Json::Arr(r.per_core_cpu_cycles.iter().map(|&c| ju(c)).collect()),
        ),
        ("total_mem_cycles", ju(r.total_mem_cycles)),
        ("reads_done", ju(r.reads_done)),
        ("avg_read_latency", jf(r.avg_read_latency)),
        ("controller", controller_to_json(&r.controller)),
        (
            "energy",
            Json::obj([
                ("act_pre_pj", jf(r.energy.act_pre_pj)),
                ("read_pj", jf(r.energy.read_pj)),
                ("write_pj", jf(r.energy.write_pj)),
                ("refresh_pj", jf(r.energy.refresh_pj)),
                ("background_pj", jf(r.energy.background_pj)),
            ]),
        ),
        ("edp", jf(r.edp)),
        ("instructions", ju(r.instructions)),
        (
            "cache",
            match &r.cache {
                None => Json::Null,
                Some(c) => Json::obj([
                    ("hits", ju(c.hits)),
                    ("misses", ju(c.misses)),
                    ("promotions", ju(c.promotions)),
                    ("evictions", ju(c.evictions)),
                ]),
            },
        ),
        (
            "per_core_read_latency",
            Json::Arr(r.per_core_read_latency.iter().map(|&x| jf(x)).collect()),
        ),
        ("telemetry", telemetry_to_json(&r.telemetry)),
        ("reliability", reliability_to_json(&r.reliability)),
    ])
}

/// Decodes a [`report_to_json`] document back into the identical
/// (`==`) [`RunReport`].
///
/// # Errors
///
/// [`CodecError`] naming the first missing or mistyped field.
pub fn report_from_json(j: &Json) -> Result<RunReport, CodecError> {
    let path = "report";
    let energy = member(j, "energy", path)?;
    let ep = format!("{path}.energy");
    let cache = match member(j, "cache", path)? {
        Json::Null => None,
        c => {
            let cp = format!("{path}.cache");
            Some(RowCacheStats {
                hits: du(c, "hits", &cp)?,
                misses: du(c, "misses", &cp)?,
                promotions: du(c, "promotions", &cp)?,
                evictions: du(c, "evictions", &cp)?,
            })
        }
    };
    let mut per_core_read_latency = Vec::new();
    for (i, v) in darr(j, "per_core_read_latency", path)?.iter().enumerate() {
        per_core_read_latency.push(decode_f64(v).ok_or_else(|| {
            CodecError::new(format!("{path}.per_core_read_latency[{i}]"), "not an f64")
        })?);
    }
    let mut per_core_cpu_cycles = Vec::new();
    for (i, v) in darr(j, "per_core_cpu_cycles", path)?.iter().enumerate() {
        per_core_cpu_cycles.push(v.as_u64_lossless().ok_or_else(|| {
            CodecError::new(
                format!("{path}.per_core_cpu_cycles[{i}]"),
                "not a lossless u64",
            )
        })?);
    }
    Ok(RunReport {
        exec_cpu_cycles: du(j, "exec_cpu_cycles", path)?,
        per_core_cpu_cycles,
        total_mem_cycles: du(j, "total_mem_cycles", path)?,
        reads_done: du(j, "reads_done", path)?,
        avg_read_latency: df(j, "avg_read_latency", path)?,
        controller: controller_from_json(
            member(j, "controller", path)?,
            &format!("{path}.controller"),
        )?,
        energy: dram_power::EnergyBreakdown {
            act_pre_pj: df(energy, "act_pre_pj", &ep)?,
            read_pj: df(energy, "read_pj", &ep)?,
            write_pj: df(energy, "write_pj", &ep)?,
            refresh_pj: df(energy, "refresh_pj", &ep)?,
            background_pj: df(energy, "background_pj", &ep)?,
        },
        edp: df(j, "edp", path)?,
        instructions: du(j, "instructions", path)?,
        cache,
        per_core_read_latency,
        telemetry: telemetry_from_json(
            member(j, "telemetry", path)?,
            &format!("{path}.telemetry"),
        )?,
        reliability: reliability_from_json(
            member(j, "reliability", path)?,
            &format!("{path}.reliability"),
        )?,
    })
}

/// Encodes a [`PointResult`] (label, key, wall clock, hit flag and the
/// embedded report). The config key is rendered as the same 16-hex-digit
/// string the sweep JSON export uses.
pub fn point_to_json(p: &PointResult) -> Json {
    Json::obj([
        ("label", Json::str(p.label.clone())),
        ("key", Json::str(format!("{:016x}", p.key))),
        ("cache_hit", Json::Bool(p.cache_hit)),
        (
            "wall_ns",
            ju(u64::try_from(p.wall.as_nanos()).unwrap_or(u64::MAX)),
        ),
        ("report", report_to_json(&p.report)),
    ])
}

/// Decodes a [`point_to_json`] document.
///
/// # Errors
///
/// [`CodecError`] naming the first missing or mistyped field.
pub fn point_from_json(j: &Json) -> Result<PointResult, CodecError> {
    let path = "point";
    let label = member(j, "label", path)?
        .as_str()
        .ok_or_else(|| CodecError::new("point.label", "not a string"))?
        .to_string();
    let key = parse_key_hex(
        member(j, "key", path)?
            .as_str()
            .ok_or_else(|| CodecError::new("point.key", "not a string"))?,
    )
    .ok_or_else(|| CodecError::new("point.key", "not a 16-hex-digit key"))?;
    Ok(PointResult {
        label,
        key,
        report: report_from_json(member(j, "report", path)?)?,
        wall: Duration::from_nanos(du(j, "wall_ns", path)?),
        cache_hit: dbool(j, "cache_hit", path)?,
    })
}

/// Parses the canonical 16-hex-digit key rendering (`{:016x}`).
pub fn parse_key_hex(s: &str) -> Option<u64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_dram::SystemConfig;

    #[test]
    fn real_report_round_trips_exactly() {
        let cfg = SystemConfig::single_core("libq", 1_500);
        let report = mcr_dram::System::try_build(&cfg)
            .expect("valid config")
            .run();
        let encoded = report_to_json(&report);
        let decoded = report_from_json(&encoded).expect("decodes");
        assert_eq!(decoded, report);
        // And through the serializer: text → value → report, same bits.
        let reparsed = Json::parse(&encoded.to_string()).expect("well-formed");
        assert_eq!(report_from_json(&reparsed).expect("decodes"), report);
    }

    #[test]
    fn missing_member_names_its_path() {
        let cfg = SystemConfig::single_core("libq", 1_000);
        let report = mcr_dram::System::try_build(&cfg)
            .expect("valid config")
            .run();
        let mut j = report_to_json(&report);
        j.set("edp", Json::Null);
        let err = report_from_json(&j).expect_err("null edp must fail");
        assert_eq!(err.path, "report.edp");
    }

    #[test]
    fn key_hex_is_strict() {
        assert_eq!(parse_key_hex("00000000000000ff"), Some(255));
        assert_eq!(parse_key_hex("ff"), None, "short");
        assert_eq!(parse_key_hex("00000000000000zz"), None, "non-hex");
        assert_eq!(parse_key_hex("00000000000000ff0"), None, "long");
    }
}
