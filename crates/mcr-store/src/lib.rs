//! # mcr-store
//!
//! Persistent, sharded, content-addressed result store for MCR-DRAM
//! sweeps (DESIGN.md §5j). The sweep engine's in-process memo
//! (`mcr_dram::ResultCache`) dies with the process; this crate supplies
//! the [`ReportStore`](mcr_dram::ReportStore) tier that doesn't:
//!
//! * [`ResultStore`] — N-way sharded by `config_key` bits, disk-backed
//!   with an in-memory hot tier, atomic write-then-rename publishing,
//!   FNV-1a-checksummed entries and quarantine-on-corruption (a bad
//!   entry is moved aside and silently recomputed, never trusted).
//! * [`codec`] — the lossless `RunReport` ↔ `sim-json` codec the
//!   entries are written in: full-range `u64`s, raw histogram state and
//!   non-finite floats all round-trip to `==`-equal reports.
//!
//! `mcr-serve` opens one per `--cache-dir` so a warm cache survives
//! restarts; `mcr_sim` exposes the same store via `--cache-dir` and the
//! `cache stats`/`cache verify`/`cache gc` subcommands; concurrent
//! sweeps, worker threads and whole processes may share one directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod store;

pub use codec::{point_from_json, point_to_json, report_from_json, report_to_json, CodecError};
pub use store::{GcReport, ResultStore, StoreStats, VerifyReport, DEFAULT_SHARDS};
