//! The sharded, disk-backed result store.
//!
//! Layout under the store directory (DESIGN.md §5j):
//!
//! ```text
//! <dir>/shard-00/<16-hex config_key>.json   committed entries
//! <dir>/shard-00/.<key>.<pid>-<seq>.tmp     in-flight writes (private names)
//! <dir>/quarantine/<shard>-<file>.<seq>     entries that failed validation
//! ```
//!
//! Entries are content-addressed by [`SystemConfig::config_key`]
//! (`mcr_dram::SystemConfig::config_key`) and land in shard
//! `key & (shards - 1)`. Publishing is atomic: the entry is fully
//! written to a process-unique `.tmp` name in the same directory, then
//! `rename`d over the final name — readers only ever open `*.json`
//! files, so they see either the old entry, the new entry, or nothing,
//! never a torn write. Because every publisher of a key writes the
//! identical bytes (reports are pure functions of their config), races
//! between processes are harmless last-writer-wins.
//!
//! Every entry embeds an FNV-1a checksum of its serialized report.
//! A reader that finds anything wrong — unparseable JSON, a checksum
//! mismatch, a key that disagrees with the filename, a decode error —
//! moves the file into `quarantine/` and reports a miss, so the sweep
//! engine silently recomputes and re-publishes. Corruption can cost
//! wall clock, never correctness.

use crate::codec::{parse_key_hex, report_from_json, report_to_json};
use mcr_dram::{ReportStore, RunReport};
use mcr_telemetry::Counter;
use sim_json::Json;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Entry-format version stamped into every file; bump on layout changes
/// so older stores quarantine cleanly instead of half-decoding.
const FORMAT: u64 = 1;

/// Default shard count (must be a power of two, at most 256).
pub const DEFAULT_SHARDS: usize = 16;

/// A sharded, disk-backed, content-addressed [`ReportStore`] with an
/// in-memory hot tier.
///
/// * `lookup` consults the hot tier first, then the shard file on disk
///   (validating checksum and key), promoting disk hits into the hot
///   tier. Corrupt entries are quarantined and read as misses.
/// * `publish` inserts into the hot tier and durably writes the entry
///   via write-then-rename before returning.
///
/// Multiple `ResultStore`s — in one process or many — may share a
/// directory; see the module docs for why the races are benign.
#[derive(Debug)]
pub struct ResultStore {
    dir: PathBuf,
    shards: usize,
    hot: Vec<Mutex<HashMap<u64, RunReport>>>,
    hits_hot: AtomicU64,
    hits_disk: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    quarantined: AtomicU64,
    io_errors: AtomicU64,
    tmp_seq: AtomicU64,
}

/// Point-in-time accounting snapshot of a [`ResultStore`], exposed
/// through `mcr-telemetry` counters (the `stats` answer of `mcr-serve`
/// and `mcr_sim cache stats` render it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Shard count the store was opened with.
    pub shards: usize,
    /// Entries currently held in the in-memory hot tier.
    pub hot_entries: usize,
    /// Committed on-disk entries per shard (scanned at snapshot time).
    pub disk_entries_per_shard: Vec<u64>,
    /// Lookups answered from the hot tier.
    pub hits_hot: Counter,
    /// Lookups answered from disk (validated, then promoted).
    pub hits_disk: Counter,
    /// Lookups that found nothing usable.
    pub misses: Counter,
    /// Reports published by this store instance.
    pub inserts: Counter,
    /// Entries moved to quarantine after failing validation.
    pub quarantined: Counter,
    /// I/O failures swallowed (publish or quarantine attempts); the
    /// store stays a correct cache under them, just a colder one.
    pub io_errors: Counter,
}

impl StoreStats {
    /// Total committed on-disk entries across all shards.
    pub fn disk_entries(&self) -> u64 {
        self.disk_entries_per_shard.iter().sum()
    }
}

/// Outcome of a full [`ResultStore::verify`] scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Entries that validated end-to-end (parse, key, checksum, decode).
    pub intact: u64,
    /// Files that failed and were moved to quarantine.
    pub corrupt: Vec<PathBuf>,
    /// Leftover `.tmp` files from interrupted publishes (not counted as
    /// corruption — [`ResultStore::gc`] removes them).
    pub stale_tmp: u64,
}

impl VerifyReport {
    /// True when the scan found nothing wrong.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Outcome of a [`ResultStore::gc`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// Leftover `.tmp` files removed from the shard directories.
    pub tmp_removed: u64,
    /// Quarantined files removed.
    pub quarantine_removed: u64,
}

impl ResultStore {
    /// Opens (creating directories as needed) a store rooted at `dir`
    /// with [`DEFAULT_SHARDS`] shards.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Self::open_sharded(dir, DEFAULT_SHARDS)
    }

    /// Opens a store with an explicit shard count (a power of two in
    /// `1..=256`; the key's low bits select the shard).
    ///
    /// # Errors
    ///
    /// `InvalidInput` for a bad shard count, otherwise directory-creation
    /// failures.
    pub fn open_sharded(dir: impl Into<PathBuf>, shards: usize) -> io::Result<Self> {
        if !(1..=256).contains(&shards) || !shards.is_power_of_two() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("shard count must be a power of two in 1..=256, got {shards}"),
            ));
        }
        let dir = dir.into();
        for s in 0..shards {
            fs::create_dir_all(dir.join(format!("shard-{s:02x}")))?;
        }
        fs::create_dir_all(dir.join("quarantine"))?;
        Ok(ResultStore {
            dir,
            shards,
            hot: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits_hot: AtomicU64::new(0),
            hits_disk: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard a key lands in: its low `log2(shards)` bits.
    pub fn shard_of(&self, key: u64) -> usize {
        (key & (self.shards as u64 - 1)) as usize
    }

    fn shard_dir(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard:02x}"))
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.shard_dir(self.shard_of(key))
            .join(format!("{key:016x}.json"))
    }

    /// Committed on-disk entries, summed over all shards (a scan).
    pub fn len(&self) -> u64 {
        self.disk_occupancy().iter().sum()
    }

    /// True when no shard holds a committed entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries currently in the in-memory hot tier.
    pub fn hot_len(&self) -> usize {
        self.hot
            .iter()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    fn disk_occupancy(&self) -> Vec<u64> {
        (0..self.shards)
            .map(|s| {
                committed_entries(&self.shard_dir(s))
                    .map(|v| v.len() as u64)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Accounting snapshot (scans the shard directories for occupancy).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            shards: self.shards,
            hot_entries: self.hot_len(),
            disk_entries_per_shard: self.disk_occupancy(),
            hits_hot: counter_of(self.hits_hot.load(Ordering::Relaxed)),
            hits_disk: counter_of(self.hits_disk.load(Ordering::Relaxed)),
            misses: counter_of(self.misses.load(Ordering::Relaxed)),
            inserts: counter_of(self.inserts.load(Ordering::Relaxed)),
            quarantined: counter_of(self.quarantined.load(Ordering::Relaxed)),
            io_errors: counter_of(self.io_errors.load(Ordering::Relaxed)),
        }
    }

    fn hot_get(&self, key: u64) -> Option<RunReport> {
        self.hot[self.shard_of(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&key)
            .cloned()
    }

    fn hot_put(&self, key: u64, report: &RunReport) {
        self.hot[self.shard_of(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, report.clone());
    }

    /// Moves a failed entry into `quarantine/` (best effort: on a move
    /// failure the file is left behind and only the counter advances —
    /// the caller already treats the entry as a miss either way).
    fn quarantine(&self, path: &Path) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let file = path
            .file_name()
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| "entry".to_string());
        let shard = path
            .parent()
            .and_then(Path::file_name)
            .map(|f| f.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unknown".to_string());
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let dest = self
            .dir
            .join("quarantine")
            .join(format!("{shard}-{file}.{seq}"));
        if fs::rename(path, &dest).is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reads, validates and decodes one committed entry file. `None`
    /// means the file was unusable (already quarantined by this call).
    fn load_entry(&self, path: &Path, expect_key: Option<u64>) -> Option<RunReport> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            // Vanished between the exists-check and the read: another
            // store quarantined or republished it — a plain miss.
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            // Unreadable content (e.g. not UTF-8) is corruption.
            Err(_) => {
                self.quarantine(path);
                return None;
            }
        };
        match decode_entry(&text, expect_key) {
            Ok(report) => Some(report),
            Err(_) => {
                self.quarantine(path);
                None
            }
        }
    }

    /// Looks a key up without touching the hit/miss counters (used by
    /// `verify`).
    fn disk_get(&self, key: u64) -> Option<RunReport> {
        let path = self.entry_path(key);
        if !path.exists() {
            return None;
        }
        self.load_entry(&path, Some(key))
    }

    /// Full-store integrity scan: every committed entry is parsed,
    /// checksummed against its embedded report, checked against its
    /// filename and decoded. Failures are quarantined, exactly as a
    /// `lookup` would have done — `verify` just does it eagerly.
    pub fn verify(&self) -> VerifyReport {
        let mut report = VerifyReport {
            intact: 0,
            corrupt: Vec::new(),
            stale_tmp: 0,
        };
        for s in 0..self.shards {
            let dir = self.shard_dir(s);
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".tmp") {
                    report.stale_tmp += 1;
                    continue;
                }
                let key = name.strip_suffix(".json").and_then(parse_key_hex);
                let Some(key) = key else {
                    // Not an entry file at all: quarantine the stray.
                    report.corrupt.push(path.clone());
                    self.quarantine(&path);
                    continue;
                };
                if self.shard_of(key) != s || self.load_entry(&path, Some(key)).is_none() {
                    if self.shard_of(key) != s {
                        self.quarantine(&path);
                    }
                    report.corrupt.push(path);
                } else {
                    report.intact += 1;
                }
            }
        }
        report
    }

    /// Removes leftover `.tmp` files (interrupted publishes) and drains
    /// the quarantine directory.
    pub fn gc(&self) -> GcReport {
        let mut report = GcReport {
            tmp_removed: 0,
            quarantine_removed: 0,
        };
        for s in 0..self.shards {
            let Ok(entries) = fs::read_dir(self.shard_dir(s)) else {
                continue;
            };
            for entry in entries.flatten() {
                if entry.file_name().to_string_lossy().ends_with(".tmp")
                    && fs::remove_file(entry.path()).is_ok()
                {
                    report.tmp_removed += 1;
                }
            }
        }
        if let Ok(entries) = fs::read_dir(self.dir.join("quarantine")) {
            for entry in entries.flatten() {
                if fs::remove_file(entry.path()).is_ok() {
                    report.quarantine_removed += 1;
                }
            }
        }
        report
    }
}

impl ReportStore for ResultStore {
    fn lookup(&self, key: u64) -> Option<RunReport> {
        if let Some(report) = self.hot_get(key) {
            self.hits_hot.fetch_add(1, Ordering::Relaxed);
            return Some(report);
        }
        match self.disk_get(key) {
            Some(report) => {
                self.hits_disk.fetch_add(1, Ordering::Relaxed);
                self.hot_put(key, &report);
                Some(report)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn publish(&self, key: u64, report: &RunReport) {
        self.hot_put(key, report);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        let seq = self.tmp_seq.fetch_add(1, Ordering::Relaxed);
        let shard_dir = self.shard_dir(self.shard_of(key));
        let tmp = shard_dir.join(format!(".{key:016x}.{}-{seq}.tmp", std::process::id()));
        let text = encode_entry(key, report);
        // Durable-before-return, best effort under I/O failure: a failed
        // publish only costs a future recompute, never correctness.
        let committed =
            fs::write(&tmp, text.as_bytes()).and_then(|()| fs::rename(&tmp, self.entry_path(key)));
        if committed.is_err() {
            self.io_errors.fetch_add(1, Ordering::Relaxed);
            let _ = fs::remove_file(&tmp);
        }
    }
}

/// Committed entry files (`<16 hex>.json`) in one shard directory.
fn committed_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.strip_suffix(".json").and_then(parse_key_hex).is_some() {
            out.push(entry.path());
        }
    }
    Ok(out)
}

/// FNV-1a 64-bit hash — the entry checksum. Stable across platforms and
/// already the idiom for content hashing in this workspace.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serializes one store entry: format stamp, key, checksum over the
/// serialized report text, and the report itself.
fn encode_entry(key: u64, report: &RunReport) -> String {
    let report_json = report_to_json(report);
    let report_text = report_json.to_string();
    let entry = Json::obj([
        ("format", Json::from_u64_lossless(FORMAT)),
        ("key", Json::str(format!("{key:016x}"))),
        (
            "checksum",
            Json::str(format!("{:016x}", fnv1a64(report_text.as_bytes()))),
        ),
        ("report", report_json),
    ]);
    let mut text = entry.to_string();
    text.push('\n');
    text
}

/// Parses and validates one entry: format, key (against `expect_key`
/// when given), checksum over the re-serialized report member, then the
/// full report decode.
fn decode_entry(text: &str, expect_key: Option<u64>) -> Result<RunReport, ()> {
    let doc = Json::parse(text).map_err(|_| ())?;
    if doc.get("format").and_then(Json::as_u64_lossless) != Some(FORMAT) {
        return Err(());
    }
    let key = doc
        .get("key")
        .and_then(Json::as_str)
        .and_then(parse_key_hex)
        .ok_or(())?;
    if expect_key.is_some_and(|k| k != key) {
        return Err(());
    }
    let report_json = doc.get("report").ok_or(())?;
    let checksum = doc
        .get("checksum")
        .and_then(Json::as_str)
        .and_then(parse_key_hex)
        .ok_or(())?;
    // The serializer is deterministic, so re-serializing the parsed
    // report member reproduces the exact bytes the checksum covered.
    if fnv1a64(report_json.to_string().as_bytes()) != checksum {
        return Err(());
    }
    report_from_json(report_json).map_err(|_| ())
}

fn counter_of(n: u64) -> Counter {
    let mut c = Counter::new();
    c.add(n);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcr_dram::{System, SystemConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mcr-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_report(len: usize) -> (u64, RunReport) {
        let cfg = SystemConfig::single_core("libq", len);
        let key = cfg.config_key();
        let report = System::try_build(&cfg).expect("valid config").run();
        (key, report)
    }

    #[test]
    fn publish_then_reopen_then_lookup() {
        let dir = tmp_dir("reopen");
        let (key, report) = sample_report(1_200);
        {
            let store = ResultStore::open(&dir).expect("open");
            store.publish(key, &report);
            assert_eq!(store.len(), 1);
        }
        // A fresh store (cold hot tier) must serve the entry from disk.
        let store = ResultStore::open(&dir).expect("reopen");
        assert_eq!(store.hot_len(), 0);
        assert_eq!(store.lookup(key).as_ref(), Some(&report));
        assert_eq!(store.stats().hits_disk.get(), 1);
        // Second lookup rides the promoted hot tier.
        assert_eq!(store.lookup(key).as_ref(), Some(&report));
        assert_eq!(store.stats().hits_hot.get(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_selection_uses_low_key_bits() {
        let dir = tmp_dir("shards");
        let store = ResultStore::open_sharded(&dir, 8).expect("open");
        assert_eq!(store.shard_of(0x10), 0);
        assert_eq!(store.shard_of(0x17), 7);
        assert!(ResultStore::open_sharded(tmp_dir("bad"), 12).is_err());
        assert!(ResultStore::open_sharded(tmp_dir("bad2"), 512).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_misses() {
        let dir = tmp_dir("corrupt");
        let (key, report) = sample_report(1_200);
        let store = ResultStore::open(&dir).expect("open");
        store.publish(key, &report);
        let path = store.entry_path(key);
        fs::write(&path, b"{\"format\": 1, \"garbage\": true}").expect("corrupt");
        let fresh = ResultStore::open(&dir).expect("reopen");
        assert_eq!(fresh.lookup(key), None, "corrupt entry must read as a miss");
        assert!(!path.exists(), "corrupt entry must leave the shard");
        assert_eq!(fresh.stats().quarantined.get(), 1);
        assert_eq!(
            fs::read_dir(dir.join("quarantine")).expect("dir").count(),
            1
        );
        // Recompute-and-republish heals the store.
        fresh.publish(key, &report);
        assert_eq!(fresh.lookup(key).as_ref(), Some(&report));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checksum_catches_a_single_flipped_digit() {
        let dir = tmp_dir("flip");
        let (key, report) = sample_report(1_200);
        let store = ResultStore::open(&dir).expect("open");
        store.publish(key, &report);
        let path = store.entry_path(key);
        let text = fs::read_to_string(&path).expect("read");
        // Flip one digit inside the report payload without breaking the
        // JSON shape: the checksum must catch it.
        let tampered = text.replacen("\"exec_cpu_cycles\":", "\"exec_cpu_cycles\": 1, \"x\":", 1);
        assert_ne!(tampered, text);
        fs::write(&path, tampered).expect("tamper");
        let fresh = ResultStore::open(&dir).expect("reopen");
        assert_eq!(fresh.lookup(key), None);
        assert_eq!(fresh.stats().quarantined.get(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_and_gc_walk_the_whole_store() {
        let dir = tmp_dir("verify");
        let (key, report) = sample_report(1_200);
        let store = ResultStore::open(&dir).expect("open");
        store.publish(key, &report);
        assert!(store.verify().is_clean());
        // Plant a zero-length entry, a stale tmp and a stray file.
        let shard0 = store.shard_dir(0);
        fs::write(shard0.join(format!("{:016x}.json", 0u64)), b"").expect("zero");
        fs::write(shard0.join(".deadbeef.tmp"), b"partial").expect("tmp");
        fs::write(shard0.join("stray.txt"), b"?").expect("stray");
        let v = store.verify();
        assert_eq!(v.intact, 1);
        assert_eq!(v.corrupt.len(), 2, "zero-length entry + stray");
        assert_eq!(v.stale_tmp, 1);
        let gc = store.gc();
        assert_eq!(gc.tmp_removed, 1);
        assert!(gc.quarantine_removed >= 2);
        assert!(store.verify().is_clean());
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
