//! Seeded property tests for the store's codec and entry format: a
//! report — randomized or produced by a real (faulted, guardband-
//! degraded) simulation — must survive `RunReport` → sim-json text →
//! store entry → disk → back with every bit intact. Failures print the
//! iteration seed, so any counterexample replays exactly.

use mcr_dram::{FaultPlan, McrMode, ReportStore, RunReport, System, SystemConfig, Telemetry};
use mcr_store::{report_from_json, report_to_json, ResultStore};
use mcr_telemetry::{Counter, LatencyHistogram, HISTOGRAM_BUCKETS};
use mem_controller::{ControllerStats, CtlTelemetry, RefreshStats};
use sim_json::Json;
use sim_rng::SmallRng;
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mcr-store-prop-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Random `u64` biased toward the representational traps: saturation,
/// the 2^53 f64-exactness boundary, and small ordinary values.
fn ru(rng: &mut SmallRng) -> u64 {
    match rng.next_u64() % 6 {
        0 => u64::MAX,
        1 => u64::MAX - 1,
        2 => 1 << 53,
        3 => (1 << 53) + 1,
        4 => rng.next_u64() % 1_000,
        _ => rng.next_u64(),
    }
}

/// Random finite `f64` spanning magnitudes, signs and subnormals.
/// (NaN is excluded here because `NaN != NaN` would poison the `==`
/// oracle; the non-finite encodings get their own dedicated test.)
fn rf(rng: &mut SmallRng) -> f64 {
    match rng.next_u64() % 6 {
        0 => 0.0,
        1 => -0.0,
        2 => 1e300,
        3 => 5e-324,
        4 => rng.gen_range(-1e6..1e6),
        _ => {
            let x = f64::from_bits(rng.next_u64());
            if x.is_finite() {
                x
            } else {
                -273.15
            }
        }
    }
}

fn rhist(rng: &mut SmallRng) -> LatencyHistogram {
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    for _ in 0..rng.gen_range(0..8u32) {
        buckets[rng.gen_range(0..HISTOGRAM_BUCKETS)] = ru(rng);
    }
    LatencyHistogram::from_raw_parts(buckets, ru(rng), ru(rng), ru(rng), ru(rng))
}

fn rcounter(rng: &mut SmallRng) -> Counter {
    let mut c = Counter::new();
    c.add(ru(rng));
    c
}

fn random_report(rng: &mut SmallRng) -> RunReport {
    let cores = rng.gen_range(0..4usize);
    let banks = (0..rng.gen_range(0..5usize))
        .map(|_| mcr_dram::BankCommandCounts {
            channel: rng.gen_range(0..4usize),
            rank: rng.gen_range(0..2usize),
            bank: rng.gen_range(0..8usize),
            activates: ru(rng),
            reads: ru(rng),
            writes: ru(rng),
            precharges: ru(rng),
        })
        .collect();
    RunReport {
        exec_cpu_cycles: ru(rng),
        per_core_cpu_cycles: (0..cores).map(|_| ru(rng)).collect(),
        total_mem_cycles: ru(rng),
        reads_done: ru(rng),
        avg_read_latency: rf(rng),
        controller: ControllerStats {
            reads_done: ru(rng),
            writes_done: ru(rng),
            read_latency_sum: ru(rng),
            row_hits: ru(rng),
            row_misses: ru(rng),
            row_conflicts: ru(rng),
            drain_cycles: ru(rng),
            refresh: RefreshStats {
                normal: ru(rng),
                fast: ru(rng),
                skipped: ru(rng),
                dropped: ru(rng),
                late: ru(rng),
            },
            retention_retries: ru(rng),
            guardband_degrades: ru(rng),
            guardband_rearms: ru(rng),
            guardband_degraded_cycles: ru(rng),
        },
        energy: dram_power::EnergyBreakdown {
            act_pre_pj: rf(rng),
            read_pj: rf(rng),
            write_pj: rf(rng),
            refresh_pj: rf(rng),
            background_pj: rf(rng),
        },
        edp: rf(rng),
        instructions: ru(rng),
        cache: if rng.gen_bool(0.5) {
            Some(mcr_dram::RowCacheStats {
                hits: ru(rng),
                misses: ru(rng),
                promotions: ru(rng),
                evictions: ru(rng),
            })
        } else {
            None
        },
        per_core_read_latency: (0..cores).map(|_| rf(rng)).collect(),
        telemetry: Telemetry {
            banks,
            refreshes_normal: ru(rng),
            refreshes_fast: ru(rng),
            powerdown_entries: ru(rng),
            mode_changes: ru(rng),
            act_to_data: rhist(rng),
            controller: CtlTelemetry {
                read_queue_depth: rhist(rng),
                write_queue_depth: rhist(rng),
                read_latency: rhist(rng),
                sched_cas_read: rcounter(rng),
                sched_cas_write: rcounter(rng),
                sched_activates: rcounter(rng),
                sched_precharges: rcounter(rng),
                sched_refreshes: rcounter(rng),
                retention_retries: rcounter(rng),
                guardband_degrades: rcounter(rng),
                guardband_rearms: rcounter(rng),
            },
            core_read_latency: rhist(rng),
            retention_checks: ru(rng),
            retention_violations: ru(rng),
            retention_escapes: ru(rng),
            retention_detect_latency: rhist(rng),
        },
        reliability: mcr_dram::ReliabilityReport {
            fault_injection: rng.gen_bool(0.5),
            fault_seed: ru(rng),
            retention_retries: ru(rng),
            refresh_dropped: ru(rng),
            refresh_late: ru(rng),
            guardband_degrades: ru(rng),
            guardband_rearms: ru(rng),
            guardband_degraded_cycles: ru(rng),
            retention_checks: ru(rng),
            retention_violations: ru(rng),
            retention_escapes: ru(rng),
        },
    }
}

/// The full persistence path for one report: value codec, text codec,
/// and a store publish → reopen (cold hot tier) → lookup.
fn assert_full_round_trip(store: &ResultStore, key: u64, report: &RunReport, seed: u64) {
    let encoded = report_to_json(report);
    let decoded = report_from_json(&encoded).expect("value codec decodes");
    assert_eq!(&decoded, report, "value codec diverged (seed {seed})");
    let reparsed = Json::parse(&encoded.to_string()).expect("serialized text parses");
    assert_eq!(
        &report_from_json(&reparsed).expect("text codec decodes"),
        report,
        "text codec diverged (seed {seed})"
    );
    store.publish(key, report);
    assert_eq!(
        store.lookup(key).as_ref(),
        Some(report),
        "hot-tier lookup diverged (seed {seed})"
    );
}

#[test]
fn randomized_reports_survive_codec_and_store() {
    let dir = tmp_dir("random");
    let store = ResultStore::open(&dir).expect("open");
    let mut published = Vec::new();
    for seed in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0xC0FF_EE00 + seed);
        let report = random_report(&mut rng);
        let key = rng.next_u64();
        assert_full_round_trip(&store, key, &report, seed);
        published.push((key, report, seed));
    }
    // One cold reopen at the end: every entry must come back off disk
    // byte-identical, through the checksum and the full decode.
    let fresh = ResultStore::open(&dir).expect("reopen");
    assert_eq!(fresh.hot_len(), 0);
    for (key, report, seed) in &published {
        assert_eq!(
            fresh.lookup(*key).as_ref(),
            Some(report),
            "disk round trip diverged (seed {seed})"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_plan_and_guardband_reports_round_trip() {
    // A real faulted run: weak cells, dropped and late refreshes all
    // armed, which drives the guardband ladder and fills the
    // reliability section with non-zero counters.
    let dir = tmp_dir("faulted");
    let store = ResultStore::open(&dir).expect("open");
    let plan = FaultPlan::new(77)
        .with_weak_cells(0.25, 0.5)
        .with_refresh_drops(0.25)
        .with_late_refreshes(0.25, 1_000);
    let cfg = SystemConfig::single_core("libq", 2_000)
        .with_mode(McrMode::headline())
        .with_fault_plan(plan);
    let key = cfg.config_key();
    let report = System::try_build(&cfg).expect("valid config").run();
    assert!(report.reliability.fault_injection, "fault plan was armed");
    assert!(
        report.reliability.retention_checks > 0,
        "the campaign actually checked retention margins"
    );
    assert_full_round_trip(&store, key, &report, 77);
    let fresh = ResultStore::open(&dir).expect("reopen");
    assert_eq!(fresh.lookup(key).as_ref(), Some(&report));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_finite_floats_round_trip_as_values() {
    // NaN breaks the `==` oracle, so the non-finite encodings are
    // checked field-by-field instead.
    let cfg = SystemConfig::single_core("libq", 1_000);
    let mut report = System::try_build(&cfg).expect("valid config").run();
    report.edp = f64::NAN;
    report.avg_read_latency = f64::INFINITY;
    report.energy.read_pj = f64::NEG_INFINITY;
    let text = report_to_json(&report).to_string();
    let back = report_from_json(&Json::parse(&text).expect("parses")).expect("decodes");
    assert!(back.edp.is_nan());
    assert_eq!(back.avg_read_latency, f64::INFINITY);
    assert_eq!(back.energy.read_pj, f64::NEG_INFINITY);
}
