//! # mcr-telemetry
//!
//! Zero-allocation-in-steady-state metrics primitives for the MCR-DRAM
//! simulator, in the instrumentation style of Ramulator / DRAMsim3:
//!
//! * [`Counter`] — a saturating event counter (never wraps, so a
//!   counter overflow can never silently corrupt a report);
//! * [`LatencyHistogram`] — a fixed-bucket (power-of-two) histogram
//!   with exact `count`/`sum`/`min`/`max` and approximate percentiles,
//!   mergeable across sweep workers (merge is associative and
//!   commutative, so the fold order never changes the result);
//! * [`TraceSink`] — a push-style event sink trait, with
//!   [`RingRecorder`] as the bounded, drop-oldest reference
//!   implementation (one pre-allocated ring, no allocation per event).
//!
//! Everything here is plain integer state: deterministic, `Clone`,
//! `PartialEq`/`Eq`, and cheap enough to live inside the simulator's
//! hot loops. The simulator crates gate the *recording calls* behind
//! their `telemetry` feature; the types themselves are always
//! available so report shapes stay stable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;

/// A saturating event counter.
///
/// Increments saturate at `u64::MAX` instead of wrapping: a report can
/// show a pegged counter, but never a small value that silently lost
/// 2^64 events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A fresh zero counter.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Counts one event.
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Counts `n` events at once.
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current value.
    pub const fn get(&self) -> u64 {
        self.0
    }

    /// Folds another counter into this one (saturating).
    pub fn merge(&mut self, other: &Counter) {
        self.0 = self.0.saturating_add(other.0);
    }
}

/// Number of power-of-two buckets in a [`LatencyHistogram`].
///
/// Bucket `i` holds samples whose bit width is `i` (bucket 0 holds the
/// value 0, bucket 1 holds 1, bucket 2 holds 2..=3, ...). 48 buckets
/// cover every value below 2^47 exactly; anything larger lands in the
/// last bucket. Simulator latencies are cycle counts well below that.
pub const HISTOGRAM_BUCKETS: usize = 48;

/// A fixed-bucket histogram for non-negative integer samples
/// (latencies in cycles, queue depths, ...).
///
/// Buckets are powers of two, so recording is just a bit-width
/// computation and an increment — no allocation, no floating point.
/// `count`, `sum`, `min` and `max` are exact; percentiles are resolved
/// to a bucket upper bound and clamped into `[min, max]`.
///
/// All state is integer, so the type is `Eq` and byte-identical across
/// build profiles and thread counts for the same sample stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// A fresh, empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a sample: its bit width, clamped to the last
    /// bucket.
    fn bucket_index(value: u64) -> usize {
        let width = (u64::BITS - value.leading_zeros()) as usize;
        width.min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of a bucket (the value reported when a
    /// percentile resolves to it).
    fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples in one step, exactly equivalent to
    /// calling [`LatencyHistogram::record`] `n` times. Lets the event-wheel
    /// core account for skipped quiet cycles (whose per-cycle samples are
    /// all equal) without replaying them. A zero `n` is a no-op.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let i = Self::bucket_index(value);
        self.buckets[i] = self.buckets[i].saturating_add(n);
        self.count = self.count.saturating_add(n);
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of all samples (`NaN` if empty, matching the
    /// `reduction_pct(0, x>0)` convention used by the report layer).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-th percentile (0..=100), resolved to the upper bound of
    /// the bucket containing that rank and clamped into `[min, max]`.
    /// Returns `None` if the histogram is empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the requested percentile, in [1, count].
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen as f64 >= rank {
                return Some(Self::bucket_upper_bound(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Median (see [`LatencyHistogram::percentile`]); `None` if empty.
    pub fn p50(&self) -> Option<u64> {
        self.percentile(50.0)
    }

    /// 95th percentile; `None` if empty.
    pub fn p95(&self) -> Option<u64> {
        self.percentile(95.0)
    }

    /// 99th percentile; `None` if empty.
    pub fn p99(&self) -> Option<u64> {
        self.percentile(99.0)
    }

    /// Folds another histogram into this one.
    ///
    /// Element-wise saturating addition plus min/max combination:
    /// associative and commutative, so sweep workers can be merged in
    /// any grouping and the result is identical.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The raw integer state — `(buckets, count, sum, min, max)` — with
    /// the empty-histogram sentinels (`min == u64::MAX`, `max == 0`)
    /// exposed as-is. Together with
    /// [`LatencyHistogram::from_raw_parts`] this is the persistence
    /// contract of the on-disk result store: a histogram rebuilt from a
    /// snapshot compares equal (`==`) to the original, including the
    /// empty case, which no replayed `record` stream could reproduce
    /// (recording anything moves `min`/`max` off their sentinels).
    pub const fn raw_parts(&self) -> (&[u64; HISTOGRAM_BUCKETS], u64, u64, u64, u64) {
        (&self.buckets, self.count, self.sum, self.min, self.max)
    }

    /// Rebuilds a histogram from a [`LatencyHistogram::raw_parts`]
    /// snapshot. No invariant between the fields is enforced: the caller
    /// (a deserializer) is trusted to hand back state that a real
    /// histogram produced, checksummed at the storage layer.
    pub const fn from_raw_parts(
        buckets: [u64; HISTOGRAM_BUCKETS],
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Self {
        LatencyHistogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Non-empty buckets as `(inclusive upper bound, sample count)`
    /// pairs, in ascending order — the export shape used by the JSON /
    /// CSV dumps.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (Self::bucket_upper_bound(i), n))
            .collect()
    }
}

/// What a [`TraceEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A row activation was issued.
    Activate,
    /// A column read was issued.
    Read,
    /// A column write was issued.
    Write,
    /// A precharge (explicit or auto) was issued.
    Precharge,
    /// A normal (full-tRFC) refresh was issued.
    RefreshNormal,
    /// A Fast-Refresh (reduced-tRFC) refresh was issued.
    RefreshFast,
    /// A rank entered power-down.
    PowerDownEnter,
    /// A rank exited power-down.
    PowerDownExit,
    /// An MRS mode change was observed.
    ModeChange,
    /// A periodic queue-depth sample (payload: read depth, write depth).
    QueueSample,
    /// A scheduler decision (payload encodes the decision class).
    SchedulerDecision,
}

impl TraceEventKind {
    /// Stable lowercase name used by trace dumps.
    pub const fn name(self) -> &'static str {
        match self {
            TraceEventKind::Activate => "act",
            TraceEventKind::Read => "read",
            TraceEventKind::Write => "write",
            TraceEventKind::Precharge => "pre",
            TraceEventKind::RefreshNormal => "ref",
            TraceEventKind::RefreshFast => "ref_fast",
            TraceEventKind::PowerDownEnter => "pd_enter",
            TraceEventKind::PowerDownExit => "pd_exit",
            TraceEventKind::ModeChange => "mode_change",
            TraceEventKind::QueueSample => "queue",
            TraceEventKind::SchedulerDecision => "sched",
        }
    }
}

/// One recorded event: a cycle stamp, a kind, and two small payload
/// words whose meaning depends on the kind (typically rank/bank or
/// queue depths). Fixed-size and `Copy` so a ring of them never
/// allocates after construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Memory-clock cycle the event occurred at.
    pub cycle: u64,
    /// Event class.
    pub kind: TraceEventKind,
    /// First payload word (e.g. rank, or read-queue depth).
    pub a: u64,
    /// Second payload word (e.g. bank, or write-queue depth).
    pub b: u64,
}

/// A push-style sink for [`TraceEvent`]s.
///
/// Implementations decide the retention policy; the simulator only
/// pushes. `as_any` allows callers that installed a concrete sink to
/// get it back (mirrors the `DevicePolicy::as_any_mut` idiom used by
/// the controller's policy plug-in).
pub trait TraceSink {
    /// Accepts one event.
    fn record(&mut self, event: TraceEvent);

    /// Downcast support for recovering the concrete sink.
    fn as_any(&self) -> &dyn Any;
}

/// A bounded, pre-allocated, drop-oldest ring of trace events.
///
/// `record` is O(1) and allocation-free once constructed: when the
/// ring is full the oldest event is dropped (and counted), so a long
/// run keeps the *tail* of its command stream — the part you want when
/// debugging how a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    total: Counter,
    dropped: Counter,
}

impl RingRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity),
            total: Counter::new(),
            dropped: Counter::new(),
        }
    }

    /// Maximum number of retained events.
    pub const fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever pushed (including dropped ones).
    pub fn total(&self) -> u64 {
        self.total.get()
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped.inc();
        }
        self.events.push_back(event);
        self.total.inc();
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics_and_saturation() {
        let mut c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX, "saturates, never wraps");
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_exact_fields() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50.0), None);
        assert!(h.mean().is_nan());
        for v in [3u64, 9, 27, 81] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 120);
        assert_eq!(h.min(), Some(3));
        assert_eq!(h.max(), Some(81));
        assert_eq!(h.mean(), 30.0);
    }

    #[test]
    fn percentiles_are_bounded_and_ordered() {
        let mut h = LatencyHistogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let (p50, p95, p99) = (
            h.p50().expect("nonempty"),
            h.p95().expect("nonempty"),
            h.p99().expect("nonempty"),
        );
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max().expect("nonempty"));
        assert!(p50 >= h.min().expect("nonempty"));
        // A constant stream resolves every percentile to that constant.
        let mut k = LatencyHistogram::new();
        for _ in 0..100 {
            k.record(7);
        }
        assert_eq!(k.p50(), Some(7));
        assert_eq!(k.p99(), Some(7));
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = LatencyHistogram::new();
        let mut looped = LatencyHistogram::new();
        for (v, n) in [(0u64, 3u64), (7, 1), (7, 0), (300, 5), (u64::MAX, 2)] {
            bulk.record_n(v, n);
            for _ in 0..n {
                looped.record(v);
            }
        }
        assert_eq!(bulk, looped);
        // A zero count never disturbs min/max.
        let mut empty = LatencyHistogram::new();
        empty.record_n(42, 0);
        assert_eq!(empty, LatencyHistogram::new());
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in [1u64, 5, 9, 200] {
            a.record(v);
            whole.record(v);
        }
        for v in [2u64, 1000, 4] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn raw_parts_round_trip_is_bit_identical() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 7, 300, u64::MAX] {
            h.record(v);
        }
        let (buckets, count, sum, min, max) = h.raw_parts();
        let rebuilt = LatencyHistogram::from_raw_parts(*buckets, count, sum, min, max);
        assert_eq!(rebuilt, h);
        // The empty histogram round-trips too, sentinels and all — the
        // case a record-replay reconstruction could never get right.
        let empty = LatencyHistogram::new();
        let (b, c, s, mn, mx) = empty.raw_parts();
        assert_eq!(mn, u64::MAX);
        assert_eq!(mx, 0);
        assert_eq!(
            LatencyHistogram::from_raw_parts(*b, c, s, mn, mx),
            LatencyHistogram::new()
        );
    }

    #[test]
    fn ring_recorder_drops_oldest() {
        let mut r = RingRecorder::new(3);
        for cycle in 0..5u64 {
            r.record(TraceEvent {
                cycle,
                kind: TraceEventKind::Activate,
                a: 0,
                b: 0,
            });
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.total(), 5);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "keeps the tail");
        let any: &dyn TraceSink = &r;
        assert!(any.as_any().downcast_ref::<RingRecorder>().is_some());
    }

    #[test]
    fn event_kind_names_are_stable() {
        assert_eq!(TraceEventKind::Activate.name(), "act");
        assert_eq!(TraceEventKind::RefreshFast.name(), "ref_fast");
        assert_eq!(TraceEventKind::QueueSample.name(), "queue");
    }
}
