//! Randomized (seeded, deterministic) property tests for the telemetry
//! primitives, in the style of the workspace's `proptests_core` suite:
//! `sim-rng` drives the cases, so every failure is reproducible from
//! the printed seed.

use mcr_telemetry::{Counter, LatencyHistogram};
use sim_rng::SmallRng;

/// A histogram filled with `n` samples drawn from a skewed mix of
/// magnitudes (small cycle counts, mid-range, and rare huge outliers —
/// the shapes real latency streams have).
fn random_histogram(rng: &mut SmallRng, n: usize) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for _ in 0..n {
        let v = match rng.gen_range(0..10u32) {
            0..=5 => rng.gen_range(0..64u64),
            6..=8 => rng.gen_range(0..100_000u64),
            _ => rng.next_u64() >> rng.gen_range(0..32u32) as u64,
        };
        h.record(v);
    }
    h
}

#[test]
fn merge_is_commutative() {
    let mut rng = SmallRng::seed_from_u64(0x7E1E_0001);
    for case in 0..200 {
        let (na, nb) = (rng.gen_range(0..200usize), rng.gen_range(0..200usize));
        let a = random_histogram(&mut rng, na);
        let b = random_histogram(&mut rng, nb);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "a+b != b+a (case {case})");
    }
}

#[test]
fn merge_is_associative() {
    let mut rng = SmallRng::seed_from_u64(0x7E1E_0002);
    for case in 0..200 {
        let (na, nb, nc) = (
            rng.gen_range(0..150usize),
            rng.gen_range(0..150usize),
            rng.gen_range(0..150usize),
        );
        let a = random_histogram(&mut rng, na);
        let b = random_histogram(&mut rng, nb);
        let c = random_histogram(&mut rng, nc);
        // (a + b) + c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "(a+b)+c != a+(b+c) (case {case})");
    }
}

#[test]
fn merge_empty_is_identity() {
    let mut rng = SmallRng::seed_from_u64(0x7E1E_0003);
    for _ in 0..100 {
        let n = rng.gen_range(1..100usize);
        let a = random_histogram(&mut rng, n);
        let mut merged = a.clone();
        merged.merge(&LatencyHistogram::new());
        assert_eq!(merged, a, "merging an empty histogram must be a no-op");
        let mut from_empty = LatencyHistogram::new();
        from_empty.merge(&a);
        assert_eq!(from_empty, a);
    }
}

#[test]
fn percentiles_bounded_by_min_max_and_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x7E1E_0004);
    for case in 0..300 {
        let n = rng.gen_range(1..400usize);
        let h = random_histogram(&mut rng, n);
        let (min, max) = (h.min().expect("nonempty"), h.max().expect("nonempty"));
        let mut last = min;
        for p in [0.0, 1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(p).expect("nonempty");
            assert!(
                (min..=max).contains(&v),
                "p{p} = {v} outside [{min}, {max}] (case {case})"
            );
            assert!(v >= last, "percentiles must be monotone in p (case {case})");
            last = v;
        }
        assert_eq!(h.percentile(100.0), Some(max), "p100 is exactly max");
    }
}

#[test]
fn counters_saturate_instead_of_wrapping() {
    let mut rng = SmallRng::seed_from_u64(0x7E1E_0005);
    for _ in 0..200 {
        let mut c = Counter::new();
        let near_top = u64::MAX - rng.gen_range(0..16u64);
        c.add(near_top);
        let before = c.get();
        c.add(rng.gen_range(0..1_000u64));
        assert!(c.get() >= before, "adding must never decrease the value");
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX, "pegged at MAX, not wrapped");
        // Merging two saturated counters stays saturated.
        let mut d = Counter::new();
        d.add(u64::MAX);
        d.merge(&c);
        assert_eq!(d.get(), u64::MAX);
    }
}

#[test]
fn histogram_count_sum_track_inputs_exactly_below_saturation() {
    let mut rng = SmallRng::seed_from_u64(0x7E1E_0006);
    for _ in 0..100 {
        let n = rng.gen_range(1..300usize);
        let mut h = LatencyHistogram::new();
        let mut expect_sum = 0u64;
        let mut expect_min = u64::MAX;
        let mut expect_max = 0u64;
        for _ in 0..n {
            let v = rng.gen_range(0..1_000_000u64);
            h.record(v);
            expect_sum += v;
            expect_min = expect_min.min(v);
            expect_max = expect_max.max(v);
        }
        assert_eq!(h.count(), n as u64);
        assert_eq!(h.sum(), expect_sum);
        assert_eq!(h.min(), Some(expect_min));
        assert_eq!(h.max(), Some(expect_max));
    }
}
