//! The memory controller proper: queues, FR-FCFS scheduling, write drain,
//! and refresh issue.

use crate::guardband::{GuardbandConfig, GuardbandMonitor, GuardbandTransition};
use crate::mapping::AddressMapper;
use crate::policy::{DevicePolicy, RefreshAction};
use crate::refresh::RefreshScheduler;
use crate::request::Request;
use crate::stats::ControllerStats;
use crate::telemetry::CtlTelemetry;
use dram_device::{
    Channel, CloneFrame, Cycle, DeviceError, Geometry, PhysAddr, RefreshWiring, ReqKind,
    RetentionConfig, RowTimingClass, TimingError, TimingSet, Violation,
};
use mcr_faults::FaultPlan;
use mcr_telemetry::TraceSink;
#[cfg(feature = "telemetry")]
use mcr_telemetry::{TraceEvent, TraceEventKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Scheduling policy for picking among queued requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// First-Ready FCFS (Rixner et al., ISCA '00): row hits first, then
    /// oldest. The paper's baseline.
    #[default]
    FrFcfs,
    /// Strict in-order service of the oldest request (ablation baseline).
    Fcfs,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowPolicy {
    /// Keep rows open until a conflict or refresh forces them closed
    /// (the paper's baseline; pairs with FR-FCFS).
    #[default]
    Open,
    /// Close the row with auto-precharge after the last queued CAS to it
    /// (ablation: trades row-hit latency for conflict latency).
    Closed,
}

/// Controller configuration (defaults follow the paper's Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerConfig {
    /// Read queue capacity per channel.
    pub read_queue_cap: usize,
    /// Write queue capacity per channel.
    pub write_queue_cap: usize,
    /// Enter write-drain mode at this write-queue occupancy.
    pub wq_high_watermark: usize,
    /// Leave write-drain mode at this occupancy.
    pub wq_low_watermark: usize,
    /// Request scheduling policy.
    pub scheduler: SchedulerKind,
    /// Row-buffer management policy.
    pub row_policy: RowPolicy,
    /// Refresh-counter wiring (paper Fig. 8; `Reversed` is the proposal).
    pub wiring: RefreshWiring,
    /// Master switch for refresh (off only for focused unit tests).
    pub refresh_enabled: bool,
    /// Put a rank into precharge power-down after this many consecutive
    /// idle cycles (no open banks, no queued requests, no refresh
    /// backlog); `None` disables power-down management.
    pub powerdown_idle_threshold: Option<u32>,
}

impl ControllerConfig {
    /// The MSC/USIMM defaults used in the paper's evaluation.
    pub fn msc_default() -> Self {
        ControllerConfig {
            read_queue_cap: 32,
            write_queue_cap: 32,
            wq_high_watermark: 24,
            wq_low_watermark: 8,
            scheduler: SchedulerKind::FrFcfs,
            row_policy: RowPolicy::Open,
            wiring: RefreshWiring::Reversed,
            refresh_enabled: true,
            powerdown_idle_threshold: None,
        }
    }
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self::msc_default()
    }
}

/// A finished read, handed back to the driving core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Token returned by [`MemoryController::enqueue_read`].
    pub token: u64,
    /// Core that issued the read.
    pub core_id: u32,
    /// Memory cycle at which the last data beat arrived.
    pub ready_at: Cycle,
    /// Queueing + service latency in memory cycles.
    pub latency: Cycle,
}

/// The edge computation that produced a [`MemoryController::next_event`]
/// wake-up cycle. Each variant names one term of the fold in
/// [`MemoryController::next_event_detail`]; the `mcr-model` certifier uses
/// it to attribute a wake-soundness violation to the source that
/// under-estimated (overshot) the earliest observable state change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeSource {
    /// Guardband monitor re-arm poll deadline.
    GuardbandRearm,
    /// Earliest in-flight read completion delivery.
    Completion,
    /// A rank's next refresh-slot deadline (tREFI cadence).
    RefreshDue,
    /// A postponed refresh slot becoming issuable (fault release window
    /// or the rank's tRFC/tRP recovery).
    RefreshRelease,
    /// An urgent rank precharging an open bank to quiesce for REFRESH.
    RefreshQuiesce,
    /// A queued row-hit request's CAS (or shared data bus) becoming legal.
    QueueCas,
    /// A queued row-conflict request's PRECHARGE becoming legal.
    QueuePrecharge,
    /// A queued row-miss request's ACTIVATE becoming legal.
    QueueActivate,
    /// A rank crossing the power-down idle threshold.
    PowerdownDue,
    /// A pending power-down entry retrying after refresh/precharges.
    PowerdownRetry,
}

/// One wake-up edge: the cycle and the computation that claimed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeInfo {
    /// Earliest cycle (strictly after the queried `now`) work can happen.
    pub cycle: Cycle,
    /// The edge source that produced `cycle`.
    pub source: EdgeSource,
}

/// Per-channel controller state.
struct ChannelCtl {
    chan: Channel,
    read_q: Vec<Request>,
    write_q: Vec<Request>,
    refresh: RefreshScheduler,
    draining: bool,
    /// (ready_at, token, core, enqueued_at) min-heap.
    completions: BinaryHeap<Reverse<(Cycle, u64, u32, Cycle)>>,
    /// Per-rank cycle since which the rank has been continuously idle
    /// (for power-down entry decisions).
    rank_idle_since: Vec<Option<Cycle>>,
}

/// The memory controller: one instance drives every channel of the system.
///
/// Drive it by calling [`MemoryController::tick`] once per memory cycle;
/// enqueue requests between ticks via [`MemoryController::enqueue_read`] /
/// [`MemoryController::enqueue_write`].
pub struct MemoryController {
    geometry: Geometry,
    config: ControllerConfig,
    channels: Vec<ChannelCtl>,
    mapper: Box<dyn AddressMapper>,
    policy: Box<dyn DevicePolicy>,
    next_token: u64,
    stats: ControllerStats,
    last_tick: Option<Cycle>,
    /// Whether the current memory cycle (since the last [`MemoryController::tick`]
    /// entry) did or queued any observable work. Cleared at the top of
    /// every tick; set by command issue, refresh-slot arrival, completion
    /// delivery, power-down transitions, drain-mode flips, guardband
    /// moves, and request enqueues. Event-wheel drivers read it through
    /// [`MemoryController::had_activity`] to decide whether the cycle was
    /// quiet (skippable).
    activity: bool,
    /// Scheduler-decision counters and queue histograms. Recording is
    /// gated by the `telemetry` feature; the struct always exists.
    telemetry: CtlTelemetry,
    /// Optional per-command event sink (`None` = disabled).
    trace: Option<Box<dyn TraceSink>>,
    /// Installed fault plan (`None` = no fault injection); feeds the
    /// refresh scheduler's drop/late fault stream.
    fault_plan: Option<FaultPlan>,
    /// Guardband monitor (`None` = degradation ladder disabled).
    guardband: Option<GuardbandMonitor>,
    /// Ladder moves the monitor decided on, awaiting the owner (the MCR
    /// policy layer applies them and drains this queue).
    guardband_events: Vec<(Cycle, GuardbandTransition)>,
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("geometry", &self.geometry)
            .field("config", &self.config)
            .field("mapper", &self.mapper.name())
            .field("next_token", &self.next_token)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl MemoryController {
    /// Builds a controller over fresh DRAM channels.
    ///
    /// The policy's extra row-timing classes (Table 3 entries for MCR
    /// modes) are registered on every channel; class indices observed by
    /// the policy start at 1 in registration order.
    ///
    /// # Panics
    ///
    /// Panics when the policy declares more row-timing classes than a
    /// channel can register; use [`MemoryController::try_new`] to handle
    /// that fallibly.
    pub fn new(
        geometry: Geometry,
        timing: TimingSet,
        config: ControllerConfig,
        mapper: Box<dyn AddressMapper>,
        policy: Box<dyn DevicePolicy>,
    ) -> Self {
        match Self::try_new(geometry, timing, config, mapper, policy) {
            Ok(ctl) => ctl,
            Err(e) => panic!("invalid controller configuration: {e}"),
        }
    }

    /// Fallible variant of [`MemoryController::new`]: returns a
    /// [`DeviceError`] instead of panicking when the policy's row-timing
    /// class table cannot be registered on the channels.
    pub fn try_new(
        geometry: Geometry,
        timing: TimingSet,
        config: ControllerConfig,
        mapper: Box<dyn AddressMapper>,
        policy: Box<dyn DevicePolicy>,
    ) -> Result<Self, DeviceError> {
        let row_bits = geometry.row_bits();
        let mut channels = Vec::with_capacity(geometry.channels as usize);
        for _ in 0..geometry.channels {
            let mut chan = Channel::new(geometry, timing.clone());
            for rt in policy.timing_classes() {
                chan.register_row_timing(rt)?;
            }
            channels.push(ChannelCtl {
                chan,
                read_q: Vec::with_capacity(config.read_queue_cap),
                write_q: Vec::with_capacity(config.write_queue_cap),
                refresh: RefreshScheduler::new(
                    geometry.ranks,
                    row_bits,
                    timing.t_refi as Cycle,
                    config.wiring,
                ),
                draining: false,
                completions: BinaryHeap::new(),
                rank_idle_since: vec![None; geometry.ranks as usize],
            });
        }
        Ok(MemoryController {
            geometry,
            config,
            channels,
            mapper,
            policy,
            next_token: 0,
            stats: ControllerStats::default(),
            last_tick: None,
            activity: true,
            telemetry: CtlTelemetry::default(),
            trace: None,
            fault_plan: None,
            guardband: None,
            guardband_events: Vec::new(),
        })
    }

    /// Arms retention tracking on every channel and installs the plan's
    /// refresh-fault stream on the scheduler.
    ///
    /// # Errors
    ///
    /// Returns the device's [`DeviceError::InvalidRetentionConfig`] when
    /// the configuration is structurally invalid.
    pub fn set_retention(&mut self, cfg: RetentionConfig) -> Result<(), DeviceError> {
        for ch in &mut self.channels {
            ch.chan.set_retention(cfg.clone())?;
        }
        self.fault_plan = Some(cfg.plan);
        Ok(())
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Installs (or replaces) the guardband monitor driving the graceful
    /// timing-degradation ladder.
    pub fn set_guardband(&mut self, cfg: GuardbandConfig) {
        self.guardband = Some(GuardbandMonitor::new(cfg));
    }

    /// The guardband monitor, if one is installed.
    pub fn guardband(&self) -> Option<&GuardbandMonitor> {
        self.guardband.as_ref()
    }

    /// Drains the guardband ladder moves decided since the last call.
    /// The owner must apply each one (re-map rows onto the degraded or
    /// restored timing classes via its MRS machinery).
    pub fn drain_guardband_transitions(&mut self) -> Vec<(Cycle, GuardbandTransition)> {
        std::mem::take(&mut self.guardband_events)
    }

    /// Queues a guardband transition and counts it.
    fn push_guardband_event(&mut self, now: Cycle, t: GuardbandTransition) {
        match t {
            GuardbandTransition::Degrade(_) => {
                self.stats.guardband_degrades += 1;
                #[cfg(feature = "telemetry")]
                self.telemetry.guardband_degrades.inc();
            }
            GuardbandTransition::Rearm(_) => {
                self.stats.guardband_rearms += 1;
                #[cfg(feature = "telemetry")]
                self.telemetry.guardband_rearms.inc();
            }
        }
        self.guardband_events.push((now, t));
        self.activity = true;
    }

    /// The controller's telemetry (all-zero when the `telemetry`
    /// feature is disabled).
    pub fn telemetry(&self) -> &CtlTelemetry {
        &self.telemetry
    }

    /// Installs a per-command trace sink (replacing any previous one).
    /// Events flow only while the `telemetry` feature is enabled.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// The installed trace sink, if any (downcast via
    /// [`TraceSink::as_any`] to recover a concrete recorder).
    pub fn trace_sink(&self) -> Option<&dyn TraceSink> {
        self.trace.as_deref()
    }

    /// Removes and returns the installed trace sink.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Feeds one event to the installed trace sink, if any.
    #[cfg(feature = "telemetry")]
    fn trace_event(&mut self, kind: TraceEventKind, cycle: Cycle, a: u64, b: u64) {
        if let Some(sink) = &mut self.trace {
            sink.record(TraceEvent { cycle, kind, a, b });
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// The system geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Aggregate statistics (refresh stats folded in lazily).
    pub fn stats(&self) -> ControllerStats {
        let mut s = self.stats.clone();
        for ch in &self.channels {
            let r = ch.refresh.stats();
            s.refresh.normal += r.normal;
            s.refresh.fast += r.fast;
            s.refresh.skipped += r.skipped;
            s.refresh.dropped += r.dropped;
            s.refresh.late += r.late;
        }
        if let Some(g) = &self.guardband {
            s.guardband_degraded_cycles = g.degraded_cycles(self.last_tick.unwrap_or(0));
        }
        s
    }

    /// Read access to the underlying channels (for power accounting).
    pub fn channels(&self) -> impl Iterator<Item = &Channel> {
        self.channels.iter().map(|c| &c.chan)
    }

    /// Mutable access to the device policy, for runtime reconfiguration
    /// (an MRS-style mode change). Timing classes stay as registered at
    /// construction; the policy may only re-map rows onto those classes.
    pub fn policy_mut(&mut self) -> &mut dyn DevicePolicy {
        self.policy.as_mut()
    }

    /// Enables command tracing (last `capacity` commands) on every
    /// channel, for debugging and sequence assertions.
    pub fn enable_command_trace(&mut self, capacity: usize) {
        for ch in &mut self.channels {
            ch.chan.enable_command_trace(capacity);
        }
    }

    /// Finalizes per-rank residency counters at the end of simulation.
    pub fn finish(&mut self, now: Cycle) {
        for ch in &mut self.channels {
            ch.chan.finish_counters(now);
        }
        if let Some(g) = &mut self.guardband {
            g.finish(now);
        }
    }

    /// True when the protocol auditor is armed on any channel.
    pub fn audit_enabled(&self) -> bool {
        self.channels.iter().any(|c| c.chan.audit_enabled())
    }

    /// Arms or disarms the protocol auditor on every channel.
    pub fn set_audit_enabled(&mut self, enabled: bool) {
        for ch in &mut self.channels {
            ch.chan.set_audit_enabled(enabled);
        }
    }

    /// Sets the refresh-starvation budget (max cycles between REFRESH
    /// commands on a rank before the auditor flags starvation) on every
    /// channel. `None` disables the check — use it when refresh is off.
    pub fn set_audit_refresh_budget(&mut self, budget: Option<Cycle>) {
        for ch in &mut self.channels {
            ch.chan.set_audit_refresh_budget(budget);
        }
    }

    /// Installs clone-frame descriptors on channel `ch` so the auditor can
    /// flag writes that land on a live clone row (opt-in; see
    /// `dram_device::audit`).
    pub fn set_audit_clone_frames(&mut self, ch: usize, frames: Vec<CloneFrame>) {
        self.channels[ch].chan.set_audit_clone_frames(frames);
    }

    /// All protocol violations recorded so far, across every channel.
    pub fn audit_violations(&self) -> impl Iterator<Item = &Violation> {
        self.channels.iter().flat_map(|c| c.chan.audit_violations())
    }

    /// Total number of violations observed (including any beyond the
    /// recording cap).
    pub fn audit_total(&self) -> u64 {
        self.channels.iter().map(|c| c.chan.audit_total()).sum()
    }

    /// Runs the auditor's end-of-stream checks (e.g. tail refresh
    /// starvation) on every channel.
    pub fn audit_finish(&mut self, now: Cycle) {
        for ch in &mut self.channels {
            ch.chan.audit_finish(now);
        }
    }

    /// Records an MRS-style mode change in every channel's command stream
    /// so the auditor can flag reconfiguration while banks are open.
    pub fn note_mode_change(&mut self, now: Cycle) {
        for ch in &mut self.channels {
            ch.chan.note_mode_change(now);
        }
        #[cfg(feature = "telemetry")]
        self.trace_event(TraceEventKind::ModeChange, now, 0, 0);
    }

    /// Number of queued reads in channel `ch`.
    pub fn read_queue_len(&self, ch: usize) -> usize {
        self.channels[ch].read_q.len()
    }

    /// Number of queued writes in channel `ch`.
    pub fn write_queue_len(&self, ch: usize) -> usize {
        self.channels[ch].write_q.len()
    }

    /// True when every queue is empty and no completion is in flight.
    pub fn idle(&self) -> bool {
        self.channels
            .iter()
            .all(|c| c.read_q.is_empty() && c.write_q.is_empty() && c.completions.is_empty())
    }

    /// True when the current memory cycle — the span since the last
    /// [`MemoryController::tick`] entry, including enqueues made after it —
    /// did or queued observable work. A `false` answer guarantees the
    /// controller's externally visible state is frozen until one of the
    /// edges reported by [`MemoryController::next_event`], so an
    /// event-wheel driver may skip ahead.
    pub fn had_activity(&self) -> bool {
        self.activity
    }

    /// Earliest cycle strictly after `now` at which a quiet controller can
    /// next do work: command legality for every queued request (including
    /// the shared data bus), completion delivery, refresh-slot deadlines
    /// and backlog release, power-down thresholds and pending entries, and
    /// guardband re-arms. Returns `None` when no such edge exists (e.g. a
    /// fully idle controller).
    ///
    /// Edges may be conservative (a wake where nothing issues is a
    /// harmless no-op tick) but are never late: every state change a
    /// quiet controller can undergo happens at or after the reported
    /// cycle. The per-rank refresh deadline is always included — a
    /// late-refresh fault stamps its release relative to the cycle the
    /// slot is observed, so jumping past a deadline would change behavior.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.next_event_detail(now).map(|e| e.cycle)
    }

    /// Like [`MemoryController::next_event`], but also reports *which*
    /// edge source claimed the earliest wake-up (ties keep the first
    /// source in scan order). This is the introspection surface the
    /// `mcr-model` wake-soundness certifier uses to attribute an overshoot
    /// to the edge computation that produced it.
    pub fn next_event_detail(&self, now: Cycle) -> Option<EdgeInfo> {
        let mut edge: Option<EdgeInfo> = None;
        let mut note = |c: Cycle, source: EdgeSource| {
            if c > now && edge.is_none_or(|e| c < e.cycle) {
                edge = Some(EdgeInfo { cycle: c, source });
            }
        };
        if let Some(g) = &self.guardband {
            if let Some(c) = g.next_rearm_cycle() {
                note(c, EdgeSource::GuardbandRearm);
            }
        }
        for ch in &self.channels {
            if let Some(&Reverse((ready, ..))) = ch.completions.peek() {
                note(ready, EdgeSource::Completion);
            }
            if self.config.refresh_enabled {
                for rank in 0..self.geometry.ranks {
                    note(ch.refresh.next_due(rank), EdgeSource::RefreshDue);
                    if ch.refresh.backlog(rank) > 0 {
                        if let Some(p) = ch.refresh.peek(rank) {
                            note(p.not_before, EdgeSource::RefreshRelease);
                        }
                        note(ch.chan.next_refresh_cycle(rank), EdgeSource::RefreshRelease);
                        // An urgent rank quiesces by precharging its open
                        // banks before the REFRESH can issue; each of
                        // those precharges is an edge of its own.
                        for bank in 0..self.geometry.banks {
                            if ch.chan.open_row(rank, bank).is_some() {
                                note(
                                    ch.chan.next_precharge_cycle(rank, bank),
                                    EdgeSource::RefreshQuiesce,
                                );
                            }
                        }
                    }
                }
            }
            // Command legality for the queue the scheduler is serving.
            // Drain mode cannot flip during a quiet span (queue lengths
            // only change on active cycles), so the selection is stable.
            let drain = ch.draining || (ch.read_q.is_empty() && !ch.write_q.is_empty());
            let q = if drain { &ch.write_q } else { &ch.read_q };
            let is_read = !drain;
            for r in q {
                let (rank, bank, row) = (r.dram.rank, r.dram.bank, r.dram.row);
                match ch.chan.open_row(rank, bank) {
                    Some(open) if open == row => note(
                        ch.chan
                            .next_cas_cycle(rank, bank, is_read)
                            .max(ch.chan.next_bus_cas_cycle(rank, is_read)),
                        EdgeSource::QueueCas,
                    ),
                    Some(_) => note(
                        ch.chan.next_precharge_cycle(rank, bank),
                        EdgeSource::QueuePrecharge,
                    ),
                    None => note(
                        ch.chan.next_activate_cycle(rank, bank),
                        EdgeSource::QueueActivate,
                    ),
                }
            }
            if let Some(threshold) = self.config.powerdown_idle_threshold {
                for rank in 0..self.geometry.ranks {
                    if let Some(since) = ch.rank_idle_since[rank as usize] {
                        let due = since.saturating_add(threshold as Cycle);
                        note(due, EdgeSource::PowerdownDue);
                        if due <= now {
                            // Entry is pending: it retries as soon as the
                            // rank finishes refreshing, and open banks
                            // still need power-down precharges.
                            note(
                                ch.chan.rank(rank).refresh_busy_until(),
                                EdgeSource::PowerdownRetry,
                            );
                            for bank in 0..self.geometry.banks {
                                if ch.chan.open_row(rank, bank).is_some() {
                                    note(
                                        ch.chan.next_precharge_cycle(rank, bank),
                                        EdgeSource::PowerdownRetry,
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        edge
    }

    /// Pending refresh backlog (postponed slots) of `rank` on channel
    /// `ch` — introspection for wake certification and diagnostics.
    pub fn refresh_backlog(&self, ch: usize, rank: u8) -> usize {
        self.channels[ch].refresh.backlog(rank)
    }

    /// True while channel `ch` is in write-drain mode.
    pub fn is_draining(&self, ch: usize) -> bool {
        self.channels[ch].draining
    }

    /// Replays the per-cycle bookkeeping of `skipped` quiet cycles in one
    /// step, exactly as that many [`MemoryController::tick`] calls would
    /// have recorded it on a frozen controller: write-drain residency and
    /// the per-channel queue-depth telemetry samples. Only valid for a
    /// span with no activity and no crossed [`MemoryController::next_event`]
    /// edge (the event-wheel driver guarantees both).
    pub fn note_skipped_cycles(&mut self, skipped: Cycle) {
        if skipped == 0 {
            return;
        }
        let draining = self.channels.iter().filter(|c| c.draining).count() as Cycle;
        self.stats.drain_cycles += draining * skipped;
        #[cfg(feature = "telemetry")]
        for ch in &self.channels {
            self.telemetry
                .read_queue_depth
                .record_n(ch.read_q.len() as u64, skipped);
            self.telemetry
                .write_queue_depth
                .record_n(ch.write_q.len() as u64, skipped);
        }
    }

    /// Attempts to enqueue a read for `core_id` at physical address `phys`.
    ///
    /// Returns the completion token, or `None` when the target channel's
    /// read queue is full. A read that matches a queued write is forwarded
    /// from the write queue (store-to-load forwarding) and completes on the
    /// next tick without touching DRAM.
    pub fn enqueue_read(&mut self, core_id: u32, phys: PhysAddr) -> Option<u64> {
        let dram = self.mapper.decode(phys);
        let ch = &mut self.channels[dram.channel as usize];
        if ch.read_q.len() >= self.config.read_queue_cap {
            return None;
        }
        let token = self.next_token;
        self.next_token += 1;
        self.activity = true;
        let now = self.last_tick.map_or(0, |c| c + 1);
        // Store-to-load forwarding from the write queue.
        if ch.write_q.iter().any(|w| w.phys == phys) {
            ch.completions.push(Reverse((now, token, core_id, now)));
            return Some(token);
        }
        ch.read_q.push(Request {
            token,
            core_id,
            kind: ReqKind::Read,
            phys,
            dram,
            enqueued_at: now,
            did_precharge: false,
            did_activate: false,
        });
        Some(token)
    }

    /// Attempts to enqueue a write. Returns `false` when the write queue is
    /// full. Writes to an already-queued line merge into the existing
    /// entry.
    pub fn enqueue_write(&mut self, core_id: u32, phys: PhysAddr) -> bool {
        let dram = self.mapper.decode(phys);
        let ch = &mut self.channels[dram.channel as usize];
        if ch.write_q.iter().any(|w| w.phys == phys) {
            self.activity = true;
            return true; // write merging
        }
        if ch.write_q.len() >= self.config.write_queue_cap {
            return false;
        }
        let token = self.next_token;
        self.next_token += 1;
        self.activity = true;
        ch.write_q.push(Request {
            token,
            core_id,
            kind: ReqKind::Write,
            phys,
            dram,
            enqueued_at: self.last_tick.map_or(0, |c| c + 1),
            did_precharge: false,
            did_activate: false,
        });
        true
    }

    /// Advances one memory cycle: updates refresh deadlines, issues at most
    /// one command per channel, and returns the reads whose data arrived at
    /// or before `now`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `now` does not advance monotonically.
    pub fn tick(&mut self, now: Cycle) -> Vec<Completion> {
        debug_assert!(
            self.last_tick.is_none_or(|t| now > t),
            "tick must advance: {:?} -> {now}",
            self.last_tick
        );
        self.last_tick = Some(now);
        self.activity = false;
        if let Some(g) = &mut self.guardband {
            if let Some(t) = g.poll(now) {
                self.push_guardband_event(now, t);
            }
        }
        let mut done = Vec::new();
        for ci in 0..self.channels.len() {
            #[cfg(feature = "telemetry")]
            {
                let ch = &self.channels[ci];
                self.telemetry
                    .read_queue_depth
                    .record(ch.read_q.len() as u64);
                self.telemetry
                    .write_queue_depth
                    .record(ch.write_q.len() as u64);
            }
            if self.config.refresh_enabled
                && self.channels[ci].refresh.tick(
                    now,
                    self.policy.as_mut(),
                    self.fault_plan.as_ref(),
                )
            {
                self.activity = true;
            }
            self.manage_power_down(ci, now);
            self.update_drain_mode(ci);
            self.schedule(ci, now);
            // Pop due completions.
            let ch = &mut self.channels[ci];
            while let Some(&Reverse((ready, token, core, enq))) = ch.completions.peek() {
                if ready > now {
                    break;
                }
                ch.completions.pop();
                self.activity = true;
                let latency = ready - enq;
                self.stats.reads_done += 1;
                self.stats.read_latency_sum += latency;
                #[cfg(feature = "telemetry")]
                self.telemetry.read_latency.record(latency);
                done.push(Completion {
                    token,
                    core_id: core,
                    ready_at: ready,
                    latency,
                });
            }
        }
        done
    }

    /// Power-down management: wake ranks that have work, put long-idle
    /// ranks to sleep (precharge power-down, CKE low).
    fn manage_power_down(&mut self, ci: usize, now: Cycle) {
        let Some(threshold) = self.config.powerdown_idle_threshold else {
            return;
        };
        for rank in 0..self.geometry.ranks {
            let ch = &self.channels[ci];
            let has_work = ch.read_q.iter().any(|r| r.dram.rank == rank)
                || ch.write_q.iter().any(|r| r.dram.rank == rank)
                || ch.refresh.backlog(rank) > 0;
            let powered_down = ch.chan.rank_powered_down(rank);
            if powered_down {
                if has_work {
                    self.channels[ci].chan.exit_power_down(rank, now);
                    self.channels[ci].rank_idle_since[rank as usize] = None;
                    self.activity = true;
                }
                continue;
            }
            // "Idle" means no pending work; open-but-unused banks still
            // count (the scheduler precharges them once the threshold is
            // reached, see `try_powerdown_precharge`).
            let ch = &mut self.channels[ci];
            match (!has_work, ch.rank_idle_since[rank as usize]) {
                (false, _) => {
                    if ch.rank_idle_since[rank as usize].take().is_some() {
                        self.activity = true;
                    }
                }
                (true, None) => {
                    ch.rank_idle_since[rank as usize] = Some(now);
                    self.activity = true;
                }
                (true, Some(since)) => {
                    if now.saturating_sub(since) >= threshold as Cycle
                        && ch.chan.rank(rank).all_idle()
                        && ch.chan.enter_power_down(rank, now).is_ok()
                    {
                        ch.rank_idle_since[rank as usize] = None;
                        self.activity = true;
                    }
                }
            }
        }
    }

    fn update_drain_mode(&mut self, ci: usize) {
        let ch = &mut self.channels[ci];
        let was_draining = ch.draining;
        if ch.draining {
            if ch.write_q.len() <= self.config.wq_low_watermark {
                ch.draining = false;
            }
        } else if ch.write_q.len() >= self.config.wq_high_watermark {
            ch.draining = true;
        }
        if ch.draining != was_draining {
            self.activity = true;
        }
        if ch.draining {
            self.stats.drain_cycles += 1;
        }
    }

    /// Issues at most one command on channel `ci` at cycle `now`.
    fn schedule(&mut self, ci: usize, now: Cycle) {
        // 1. Urgent refresh takes absolute priority for its rank.
        let ranks = self.geometry.ranks;
        let mut urgent = Vec::new();
        for rank in 0..ranks {
            if self.config.refresh_enabled && self.channels[ci].refresh.urgent(rank) {
                urgent.push(rank);
            }
        }
        for &rank in &urgent {
            if self.try_refresh(ci, rank, now) || self.try_idle_rank(ci, rank, now) {
                return;
            }
        }

        // 2. Serve the active request queue.
        let drain = {
            let ch = &self.channels[ci];
            ch.draining || (ch.read_q.is_empty() && !ch.write_q.is_empty())
        };
        let issued = match self.config.scheduler {
            SchedulerKind::FrFcfs => self.schedule_fr_fcfs(ci, now, drain, &urgent),
            SchedulerKind::Fcfs => self.schedule_fcfs(ci, now, drain, &urgent),
        };
        if issued {
            return;
        }

        // 3. Opportunistic refresh in an otherwise idle command slot.
        if self.config.refresh_enabled {
            for rank in 0..ranks {
                if self.channels[ci].refresh.backlog(rank) > 0 && self.try_refresh(ci, rank, now) {
                    return;
                }
            }
        }

        // 4. Power-down preparation: precharge open-but-unused banks of
        // ranks that have exceeded the idle threshold.
        if let Some(threshold) = self.config.powerdown_idle_threshold {
            for rank in 0..ranks {
                let due = matches!(
                    self.channels[ci].rank_idle_since[rank as usize],
                    Some(since) if now.saturating_sub(since) >= threshold as Cycle
                );
                if due && self.try_idle_rank(ci, rank, now) {
                    return;
                }
            }
        }
    }

    /// FR-FCFS: oldest issuable row hit, else oldest ACT, else oldest PRE.
    fn schedule_fr_fcfs(&mut self, ci: usize, now: Cycle, drain: bool, urgent: &[u8]) -> bool {
        let is_read = !drain;
        // Pass 1: row hits.
        let hit = self.find_request(ci, drain, urgent, |ch, r| {
            ch.open_row(r.dram.rank, r.dram.bank) == Some(r.dram.row)
                && ch.next_cas_cycle(r.dram.rank, r.dram.bank, is_read) <= now
        });
        if let Some(idx) = hit {
            return self.issue_cas(ci, idx, drain, now);
        }
        // Pass 2: closed banks -> ACTIVATE.
        let act = self.find_request(ci, drain, urgent, |ch, r| {
            ch.open_row(r.dram.rank, r.dram.bank).is_none()
                && ch.next_activate_cycle(r.dram.rank, r.dram.bank) <= now
        });
        if let Some(idx) = act {
            return self.issue_act(ci, idx, drain, now);
        }
        // Pass 3: conflicts -> PRECHARGE, but never close a row that still
        // has pending hits in the active queue.
        let pre = self.find_request(ci, drain, urgent, |ch, r| {
            matches!(ch.open_row(r.dram.rank, r.dram.bank), Some(open) if open != r.dram.row)
                && ch.next_precharge_cycle(r.dram.rank, r.dram.bank) <= now
        });
        if let Some(idx) = pre {
            let (rank, bank) = {
                let q = self.queue(ci, drain);
                (q[idx].dram.rank, q[idx].dram.bank)
            };
            let open = self.channels[ci].chan.open_row(rank, bank);
            let has_pending_hit = self
                .queue(ci, drain)
                .iter()
                .any(|r| r.dram.rank == rank && r.dram.bank == bank && Some(r.dram.row) == open);
            if !has_pending_hit {
                return self.issue_pre(ci, idx, drain, now);
            }
        }
        false
    }

    /// FCFS: work only on the oldest request.
    fn schedule_fcfs(&mut self, ci: usize, now: Cycle, drain: bool, urgent: &[u8]) -> bool {
        let oldest = self.find_request(ci, drain, urgent, |_, _| true);
        let Some(idx) = oldest else { return false };
        let (rank, bank, row) = {
            let q = self.queue(ci, drain);
            (q[idx].dram.rank, q[idx].dram.bank, q[idx].dram.row)
        };
        let is_read = !drain;
        let ch = &self.channels[ci].chan;
        match ch.open_row(rank, bank) {
            Some(open) if open == row => {
                if ch.next_cas_cycle(rank, bank, is_read) <= now {
                    return self.issue_cas(ci, idx, drain, now);
                }
            }
            Some(_) => {
                if ch.next_precharge_cycle(rank, bank) <= now {
                    return self.issue_pre(ci, idx, drain, now);
                }
            }
            None => {
                if ch.next_activate_cycle(rank, bank) <= now {
                    return self.issue_act(ci, idx, drain, now);
                }
            }
        }
        false
    }

    fn queue(&self, ci: usize, drain: bool) -> &Vec<Request> {
        if drain {
            &self.channels[ci].write_q
        } else {
            &self.channels[ci].read_q
        }
    }

    /// Index (in queue order, i.e. oldest-first) of the first request not
    /// targeting an urgent rank for which `pred` holds.
    fn find_request(
        &self,
        ci: usize,
        drain: bool,
        urgent: &[u8],
        pred: impl Fn(&Channel, &Request) -> bool,
    ) -> Option<usize> {
        let ch = &self.channels[ci];
        self.queue(ci, drain)
            .iter()
            .enumerate()
            .find(|(_, r)| !urgent.contains(&r.dram.rank) && pred(&ch.chan, r))
            .map(|(i, _)| i)
    }

    fn issue_cas(&mut self, ci: usize, idx: usize, drain: bool, now: Cycle) -> bool {
        let req = if drain {
            self.channels[ci].write_q[idx].clone()
        } else {
            self.channels[ci].read_q[idx].clone()
        };
        // Closed-page policy: auto-precharge when no other queued request
        // (either queue) still wants this row.
        let auto_pre = self.config.row_policy == RowPolicy::Closed && {
            let ch = &self.channels[ci];
            let wants_row = |r: &Request| {
                r.token != req.token
                    && r.dram.rank == req.dram.rank
                    && r.dram.bank == req.dram.bank
                    && r.dram.row == req.dram.row
            };
            !ch.read_q.iter().any(wants_row) && !ch.write_q.iter().any(wants_row)
        };
        let ch = &mut self.channels[ci];
        let result = match (drain, auto_pre) {
            (true, false) => ch
                .chan
                .write(req.dram.rank, req.dram.bank, req.dram.col, now),
            (true, true) => {
                ch.chan
                    .write_auto_precharge(req.dram.rank, req.dram.bank, req.dram.col, now)
            }
            (false, false) => ch
                .chan
                .read(req.dram.rank, req.dram.bank, req.dram.col, now),
            (false, true) => {
                ch.chan
                    .read_auto_precharge(req.dram.rank, req.dram.bank, req.dram.col, now)
            }
        };
        let Ok(data_end) = result else { return false };
        self.activity = true;
        #[cfg(feature = "telemetry")]
        {
            let kind = if drain {
                self.telemetry.sched_cas_write.inc();
                TraceEventKind::Write
            } else {
                self.telemetry.sched_cas_read.inc();
                TraceEventKind::Read
            };
            self.trace_event(kind, now, req.dram.rank as u64, req.dram.bank as u64);
        }
        match req.service_class() {
            crate::request::ServiceClass::RowHit => self.stats.row_hits += 1,
            crate::request::ServiceClass::RowMiss => self.stats.row_misses += 1,
            crate::request::ServiceClass::RowConflict => self.stats.row_conflicts += 1,
        }
        let ch = &mut self.channels[ci];
        if drain {
            ch.write_q.remove(idx);
            self.stats.writes_done += 1;
        } else {
            let r = ch.read_q.remove(idx);
            ch.completions
                .push(Reverse((data_end, r.token, r.core_id, r.enqueued_at)));
        }
        true
    }

    fn issue_act(&mut self, ci: usize, idx: usize, drain: bool, now: Cycle) -> bool {
        let dram = self.queue(ci, drain)[idx].dram;
        let (class, extra) = self.policy.activate_class(&dram);
        let ch = &mut self.channels[ci];
        match ch
            .chan
            .activate_mcr(dram.rank, dram.bank, dram.row, now, class, extra)
        {
            Ok(()) => {}
            Err(TimingError::RetentionViolation { .. }) => {
                // The retention detector rejected a fast-class restore on a
                // decayed row. Retry in the same cycle with the full-restore
                // baseline class (class 0 never runs a margin check), and
                // feed the violation to the guardband ladder. Stats and
                // guardband state change even when the retry fails, so the
                // cycle counts as active either way.
                self.activity = true;
                self.stats.retention_retries += 1;
                #[cfg(feature = "telemetry")]
                self.telemetry.retention_retries.inc();
                let retried = self.channels[ci]
                    .chan
                    .activate_mcr(
                        dram.rank,
                        dram.bank,
                        dram.row,
                        now,
                        RowTimingClass(0),
                        extra,
                    )
                    .is_ok();
                let transition = self.guardband.as_mut().and_then(|g| g.note_violation(now));
                if let Some(t) = transition {
                    self.push_guardband_event(now, t);
                }
                if !retried {
                    return false;
                }
            }
            Err(_) => return false,
        }
        // The ACT was issued (directly or via the full-restore retry):
        // let the policy update any per-row dynamic state.
        self.policy.on_activate(&dram);
        self.activity = true;
        #[cfg(feature = "telemetry")]
        {
            self.telemetry.sched_activates.inc();
            self.trace_event(
                TraceEventKind::Activate,
                now,
                dram.rank as u64,
                dram.bank as u64,
            );
        }
        let q = if drain {
            &mut self.channels[ci].write_q
        } else {
            &mut self.channels[ci].read_q
        };
        q[idx].did_activate = true;
        true
    }

    fn issue_pre(&mut self, ci: usize, idx: usize, drain: bool, now: Cycle) -> bool {
        let dram = self.queue(ci, drain)[idx].dram;
        let ch = &mut self.channels[ci];
        if ch.chan.precharge(dram.rank, dram.bank, now).is_err() {
            return false;
        }
        self.activity = true;
        #[cfg(feature = "telemetry")]
        {
            self.telemetry.sched_precharges.inc();
            self.trace_event(
                TraceEventKind::Precharge,
                now,
                dram.rank as u64,
                dram.bank as u64,
            );
        }
        let q = if drain {
            &mut self.channels[ci].write_q
        } else {
            &mut self.channels[ci].read_q
        };
        q[idx].did_precharge = true;
        true
    }

    /// Tries to issue the oldest pending refresh for `rank`.
    fn try_refresh(&mut self, ci: usize, rank: u8, now: Cycle) -> bool {
        let Some(pending) = self.channels[ci].refresh.peek(rank) else {
            return false;
        };
        if pending.not_before > now {
            return false; // late-refresh fault: slot not released yet
        }
        let t_rfc = match pending.action {
            RefreshAction::Fast(t) => Some(t),
            RefreshAction::Normal => None,
            RefreshAction::Skip => unreachable!("skips never enter the backlog"),
        };
        let ch = &mut self.channels[ci];
        if ch.chan.refresh_slot(rank, pending.row, now, t_rfc).is_ok() {
            let consumed = ch.refresh.consume(rank).is_some();
            self.activity = true;
            #[cfg(feature = "telemetry")]
            if consumed {
                self.telemetry.sched_refreshes.inc();
                let kind = if t_rfc.is_some() {
                    TraceEventKind::RefreshFast
                } else {
                    TraceEventKind::RefreshNormal
                };
                self.trace_event(kind, now, rank as u64, 0);
            }
            consumed
        } else {
            false
        }
    }

    /// Urgent-refresh helper: precharges one open bank of `rank` if legal.
    fn try_idle_rank(&mut self, ci: usize, rank: u8, now: Cycle) -> bool {
        let ch = &mut self.channels[ci];
        for bank in 0..self.geometry.banks {
            if ch.chan.open_row(rank, bank).is_some()
                && ch.chan.next_precharge_cycle(rank, bank) <= now
                && ch.chan.precharge(rank, bank, now).is_ok()
            {
                self.activity = true;
                #[cfg(feature = "telemetry")]
                {
                    self.telemetry.sched_precharges.inc();
                    self.trace_event(TraceEventKind::Precharge, now, rank as u64, bank as u64);
                }
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::PageInterleave;
    use crate::policy::NormalPolicy;
    use circuit_model::{CircuitParams, LeakageModel};

    /// Policy that always activates with class 1 (a truncated
    /// Early-Precharge restore), for retention-path tests.
    struct FastClassPolicy;

    impl DevicePolicy for FastClassPolicy {
        fn activate_class(&self, _: &dram_device::DramAddress) -> (RowTimingClass, u32) {
            (RowTimingClass(1), 0)
        }
        fn refresh_action(&mut self, _: u8, _: u64) -> RefreshAction {
            RefreshAction::Normal
        }
        fn timing_classes(&self) -> Vec<dram_device::RowTiming> {
            vec![dram_device::RowTiming {
                t_rcd: 11,
                t_ras: 20,
            }]
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    /// Retention config whose class 1 restores 0.15 V short of full
    /// charge (survives ~32 ms of nominal leakage).
    fn retention_cfg(plan: FaultPlan) -> RetentionConfig {
        let params = CircuitParams::calibrated();
        RetentionConfig {
            plan,
            leakage: LeakageModel::new(params),
            class_restore_v: vec![params.v_full, params.v_full - 0.15],
            fast_refresh_restore_v: params.v_full,
            full_restore_v: params.v_full,
            t_ck_ns: 1.25,
        }
    }

    fn controller(refresh: bool) -> MemoryController {
        let g = Geometry::tiny();
        let mut cfg = ControllerConfig::msc_default();
        cfg.refresh_enabled = refresh;
        MemoryController::new(
            g,
            TimingSet::default(),
            cfg,
            Box::new(PageInterleave::new(g)),
            Box::new(NormalPolicy),
        )
    }

    fn run(ctl: &mut MemoryController, from: Cycle, to: Cycle) -> Vec<Completion> {
        let mut done = Vec::new();
        for now in from..to {
            done.extend(ctl.tick(now));
        }
        done
    }

    #[test]
    fn single_read_completes_with_miss_latency() {
        let mut ctl = controller(false);
        let token = ctl.enqueue_read(0, PhysAddr(0)).unwrap();
        let done = run(&mut ctl, 0, 100);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, token);
        // ACT at 0, RD at tRCD=11, data at 11+CL+BL = 26.
        assert_eq!(done[0].ready_at, 26);
        assert_eq!(ctl.stats().row_misses, 1);
    }

    #[test]
    fn second_read_same_row_is_a_hit() {
        let mut ctl = controller(false);
        ctl.enqueue_read(0, PhysAddr(0)).unwrap();
        ctl.enqueue_read(0, PhysAddr(64)).unwrap();
        let done = run(&mut ctl, 0, 100);
        assert_eq!(done.len(), 2);
        let s = ctl.stats();
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_hits, 1);
        // Hit's data trails the first by one burst (tCCD-limited).
        assert!(done[1].ready_at <= done[0].ready_at + 5);
    }

    #[test]
    fn conflicting_row_forces_precharge() {
        let mut ctl = controller(false);
        let g = Geometry::tiny();
        let m = PageInterleave::new(g);
        // Same bank (bank 0), different rows.
        let a = m.encode(&dram_device::DramAddress {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 1,
            col: 0,
        });
        let b = m.encode(&dram_device::DramAddress {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 2,
            col: 0,
        });
        ctl.enqueue_read(0, a).unwrap();
        ctl.enqueue_read(0, b).unwrap();
        let done = run(&mut ctl, 0, 200);
        assert_eq!(done.len(), 2);
        let s = ctl.stats();
        assert_eq!(s.row_misses, 1);
        assert_eq!(s.row_conflicts, 1);
        // Conflict pays tRAS + tRP before its ACT: first data 26, second
        // ACT no earlier than tRAS(28)+tRP(11)=39.
        assert!(done[1].ready_at >= 39 + 11 + 15);
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut ctl = controller(false);
        for i in 0..32 {
            assert!(ctl.enqueue_read(0, PhysAddr(i * 4096)).is_some());
        }
        assert!(ctl.enqueue_read(0, PhysAddr(99 * 4096)).is_none());
    }

    #[test]
    fn write_merging_and_forwarding() {
        let mut ctl = controller(false);
        assert!(ctl.enqueue_write(0, PhysAddr(0)));
        assert!(ctl.enqueue_write(0, PhysAddr(0))); // merged
        assert_eq!(ctl.write_queue_len(0), 1);
        let t = ctl.enqueue_read(0, PhysAddr(0)).unwrap();
        let done = run(&mut ctl, 0, 5);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, t);
        assert_eq!(ctl.stats().reads_done, 1);
        assert_eq!(ctl.stats().row_hits + ctl.stats().row_misses, 0); // forwarded
    }

    #[test]
    fn writes_drain_when_reads_idle() {
        let mut ctl = controller(false);
        assert!(ctl.enqueue_write(0, PhysAddr(0)));
        run(&mut ctl, 0, 100);
        assert_eq!(ctl.write_queue_len(0), 0);
        assert_eq!(ctl.stats().writes_done, 1);
    }

    #[test]
    fn high_watermark_triggers_drain_mode() {
        let mut ctl = controller(false);
        for i in 0..24 {
            assert!(ctl.enqueue_write(0, PhysAddr(i * 4096)));
        }
        // Reads waiting too: drain mode should still kick in.
        ctl.enqueue_read(0, PhysAddr(1 << 20)).unwrap();
        run(&mut ctl, 0, 2000);
        let s = ctl.stats();
        assert!(s.drain_cycles > 0);
        assert!(s.writes_done >= 16, "drained to low watermark");
        assert_eq!(s.reads_done, 1);
    }

    #[test]
    fn refresh_occurs_every_trefi() {
        let mut ctl = controller(true);
        run(&mut ctl, 0, 20_000);
        let s = ctl.stats();
        // tiny geometry has 1 rank: slots due at 6240, 12480, 18720.
        assert_eq!(s.refresh.normal, 3);
    }

    #[test]
    fn reads_still_complete_with_refresh_on() {
        let mut ctl = controller(true);
        let mut completed = 0;
        let mut enqueued = 0u64;
        for now in 0..50_000u64 {
            if now % 100 == 0
                && now < 45_000
                && ctl
                    .enqueue_read(0, PhysAddr((now * 64) % (1 << 18)))
                    .is_some()
            {
                enqueued += 1;
            }
            completed += ctl.tick(now).len();
        }
        assert_eq!(completed as u64, enqueued);
        assert!(ctl.idle());
    }

    #[test]
    fn fr_fcfs_command_sequence_prefers_hits() {
        use dram_device::CommandKind;
        let g = Geometry::tiny();
        let mut cfg = ControllerConfig::msc_default();
        cfg.refresh_enabled = false;
        let mut ctl = MemoryController::new(
            g,
            TimingSet::default(),
            cfg,
            Box::new(PageInterleave::new(g)),
            Box::new(NormalPolicy),
        );
        ctl.enable_command_trace(32);
        let m = PageInterleave::new(g);
        let mk = |row, col| {
            m.encode(&dram_device::DramAddress {
                channel: 0,
                rank: 0,
                bank: 0,
                row,
                col,
            })
        };
        // Conflict (row 2) enqueued before a hit (row 1, already open
        // after the first request) — FR-FCFS serves the hit's CAS before
        // precharging for the conflict.
        ctl.enqueue_read(0, mk(1, 0)).unwrap();
        ctl.enqueue_read(0, mk(2, 0)).unwrap();
        ctl.enqueue_read(0, mk(1, 1)).unwrap();
        run(&mut ctl, 0, 300);
        let kinds: Vec<(CommandKind, u64)> = ctl
            .channels()
            .next()
            .unwrap()
            .command_trace()
            .map(|c| (c.kind, c.addr.row))
            .collect();
        // ACT(1), RD(1,0), RD(1,1) — the hit jumps the older conflict —
        // then PRE, ACT(2), RD(2).
        assert_eq!(kinds[0], (CommandKind::Activate, 1));
        assert_eq!(kinds[1].0, CommandKind::Read);
        assert_eq!(kinds[2].0, CommandKind::Read);
        assert_eq!(
            kinds[2].1, 1,
            "row-1 hit must be served before the conflict"
        );
        assert_eq!(kinds[3].0, CommandKind::Precharge);
        assert_eq!(kinds[4], (CommandKind::Activate, 2));
    }

    #[test]
    fn idle_rank_powers_down_and_wakes_for_requests() {
        let g = Geometry::tiny();
        let mut cfg = ControllerConfig::msc_default();
        cfg.refresh_enabled = false;
        cfg.powerdown_idle_threshold = Some(30);
        let mut ctl = MemoryController::new(
            g,
            TimingSet::default(),
            cfg,
            Box::new(PageInterleave::new(g)),
            Box::new(NormalPolicy),
        );
        // Serve one read, then go idle long enough to power down.
        ctl.enqueue_read(0, PhysAddr(0)).unwrap();
        run(&mut ctl, 0, 200);
        let powered_down = {
            let chan = ctl.channels().next().unwrap();
            chan.rank_powered_down(0)
        };
        assert!(powered_down, "rank should be asleep after long idle");
        // A new request wakes it and still completes (with tXP penalty).
        let t = ctl.enqueue_read(0, PhysAddr(4096)).unwrap();
        let done = run(&mut ctl, 200, 400);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].token, t);
        ctl.finish(400);
        let pd = ctl
            .channels()
            .next()
            .unwrap()
            .rank(0)
            .counters
            .powerdown_cycles;
        assert!(pd > 50, "power-down residency recorded ({pd})");
    }

    #[test]
    fn closed_page_auto_precharges_last_access() {
        let g = Geometry::tiny();
        let mut cfg = ControllerConfig::msc_default();
        cfg.refresh_enabled = false;
        cfg.row_policy = RowPolicy::Closed;
        let mut ctl = MemoryController::new(
            g,
            TimingSet::default(),
            cfg,
            Box::new(PageInterleave::new(g)),
            Box::new(NormalPolicy),
        );
        let m = PageInterleave::new(g);
        let mk = |row, col| {
            m.encode(&dram_device::DramAddress {
                channel: 0,
                rank: 0,
                bank: 0,
                row,
                col,
            })
        };
        // Two reads to the same row: the first stays open (a pending
        // request wants the row), the second auto-precharges.
        ctl.enqueue_read(0, mk(1, 0)).unwrap();
        ctl.enqueue_read(0, mk(1, 1)).unwrap();
        let done = run(&mut ctl, 0, 200);
        assert_eq!(done.len(), 2);
        assert_eq!(ctl.stats().row_hits, 1, "second read still hits");
        // Bank closed itself without an explicit PRE from the scheduler: a
        // new read to another row needs only ACT (a miss, not a conflict).
        ctl.enqueue_read(0, mk(2, 0)).unwrap();
        let done = run(&mut ctl, 200, 400);
        assert_eq!(done.len(), 1);
        assert_eq!(ctl.stats().row_conflicts, 0);
        assert_eq!(ctl.stats().row_misses, 2);
    }

    #[test]
    fn retention_violation_retries_with_baseline_class() {
        const MS64: Cycle = 51_200_000;
        let g = Geometry::tiny();
        let mut cfg = ControllerConfig::msc_default();
        cfg.refresh_enabled = false;
        let mut ctl = MemoryController::new(
            g,
            TimingSet::default(),
            cfg,
            Box::new(PageInterleave::new(g)),
            Box::new(FastClassPolicy),
        );
        ctl.set_retention(retention_cfg(FaultPlan::new(3))).unwrap();
        ctl.set_guardband(crate::guardband::GuardbandConfig {
            window: 1_000,
            threshold: 1,
            ..Default::default()
        });
        // Within the fresh retention window the class-1 ACT is accepted.
        ctl.enqueue_read(0, PhysAddr(0)).unwrap();
        let done = run(&mut ctl, 0, 100);
        assert_eq!(done.len(), 1);
        assert_eq!(ctl.stats().retention_retries, 0);
        // A different row of the same bank, a hair past the 64 ms window:
        // the conflict forces PRE + ACT, the fast-class ACT fails its
        // margin check, and the controller retries with class 0 in the
        // same cycle — the read still completes.
        let m = PageInterleave::new(g);
        let b = m.encode(&dram_device::DramAddress {
            channel: 0,
            rank: 0,
            bank: 0,
            row: 2,
            col: 0,
        });
        ctl.enqueue_read(0, b).unwrap();
        let done = run(&mut ctl, MS64 + 1_000, MS64 + 1_200);
        assert_eq!(done.len(), 1, "read completes via the class-0 retry");
        let s = ctl.stats();
        assert_eq!(s.retention_retries, 1);
        assert_eq!(s.guardband_degrades, 1);
        let events = ctl.drain_guardband_transitions();
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0].1,
            GuardbandTransition::Degrade(crate::guardband::DegradeLevel::NoSkip)
        );
        assert!(ctl.drain_guardband_transitions().is_empty(), "drained");
    }

    #[test]
    fn dropped_refresh_faults_surface_in_stats() {
        let mut ctl = controller(true);
        ctl.set_retention(retention_cfg(FaultPlan::new(9).with_refresh_drops(1.0)))
            .unwrap();
        run(&mut ctl, 0, 20_000);
        let s = ctl.stats();
        // tiny geometry, 1 rank: slots due at 6240, 12480, 18720 — all
        // consumed by the injected drop fault, none issued.
        assert_eq!(s.refresh.dropped, 3);
        assert_eq!(s.refresh.normal, 0);
    }

    #[test]
    fn late_refresh_faults_delay_issue_until_release() {
        let mut ctl = controller(true);
        ctl.set_retention(retention_cfg(
            FaultPlan::new(9).with_late_refreshes(1.0, 5_000),
        ))
        .unwrap();
        run(&mut ctl, 0, 11_000);
        // The slot due at 6240 is held until its release cycle 11_240.
        let s = ctl.stats();
        assert_eq!(s.refresh.late, 1);
        assert_eq!(s.refresh.normal, 0);
        run(&mut ctl, 11_000, 12_000);
        assert_eq!(ctl.stats().refresh.normal, 1);
    }

    #[test]
    fn fcfs_serves_in_order() {
        let g = Geometry::tiny();
        let mut cfg = ControllerConfig::msc_default();
        cfg.refresh_enabled = false;
        cfg.scheduler = SchedulerKind::Fcfs;
        let mut ctl = MemoryController::new(
            g,
            TimingSet::default(),
            cfg,
            Box::new(PageInterleave::new(g)),
            Box::new(NormalPolicy),
        );
        let m = PageInterleave::new(g);
        let mk = |row, col| {
            m.encode(&dram_device::DramAddress {
                channel: 0,
                rank: 0,
                bank: 0,
                row,
                col,
            })
        };
        let t0 = ctl.enqueue_read(0, mk(1, 0)).unwrap();
        let t1 = ctl.enqueue_read(0, mk(2, 0)).unwrap();
        let t2 = ctl.enqueue_read(0, mk(1, 1)).unwrap(); // would be a hit under FR-FCFS
        let done = run(&mut ctl, 0, 500);
        let order: Vec<u64> = done.iter().map(|c| c.token).collect();
        assert_eq!(order, vec![t0, t1, t2]);
    }
}
