//! Guardband monitor: sliding-window retention-violation tracking and the
//! graceful timing-degradation ladder (DESIGN.md §5f).
//!
//! Detected retention violations (see `dram_device::RetentionEvent`) feed
//! a [`GuardbandMonitor`]. When too many land inside one sliding window
//! the monitor steps the system down a degradation ladder — first
//! disabling Refresh-Skipping (every slot refreshes again), then
//! reverting Early-Precharge to the full baseline `tRAS` (full restores)
//! — instead of letting fast-but-marginal timing keep failing. After a
//! violation-free hysteresis period (stretched by an exponential backoff
//! that grows with every degradation) the monitor re-arms one step at a
//! time.
//!
//! The monitor only *decides*; applying a step is the owner's job (the
//! MCR policy layer re-maps rows onto pre-registered timing classes via
//! the MRS mode-change machinery). That split keeps this crate
//! MCR-agnostic, like the rest of the controller.

use dram_device::Cycle;
use std::collections::VecDeque;

/// Rungs of the degradation ladder, mildest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// All configured MCR mechanisms active (no degradation).
    Full,
    /// Refresh-Skipping disabled: every refresh slot issues.
    NoSkip,
    /// Additionally, Early-Precharge reverted to the baseline `tRAS`
    /// so every activation restores cells fully.
    FullRas,
}

impl DegradeLevel {
    /// The next-worse rung, saturating at [`DegradeLevel::FullRas`].
    fn down(self) -> Self {
        match self {
            DegradeLevel::Full => DegradeLevel::NoSkip,
            _ => DegradeLevel::FullRas,
        }
    }

    /// The next-better rung, saturating at [`DegradeLevel::Full`].
    fn up(self) -> Self {
        match self {
            DegradeLevel::FullRas => DegradeLevel::NoSkip,
            _ => DegradeLevel::Full,
        }
    }
}

/// A ladder move the monitor decided on; the owner must apply it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardbandTransition {
    /// Step down to the carried level (violations crossed the threshold).
    Degrade(DegradeLevel),
    /// Step back up to the carried level (quiet long enough).
    Rearm(DegradeLevel),
}

/// Thresholds and pacing of the [`GuardbandMonitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardbandConfig {
    /// Sliding-window length in memory cycles.
    pub window: Cycle,
    /// Violations inside one window that trigger a degradation step.
    pub threshold: u32,
    /// Violation-free cycles required before any re-arm step.
    pub hysteresis: Cycle,
    /// Base backoff added to the hysteresis; doubles with every
    /// degradation (exponential backoff before re-arming).
    pub backoff_base: Cycle,
    /// Cap on backoff doublings, bounding the longest re-arm delay.
    pub backoff_cap: u32,
}

impl Default for GuardbandConfig {
    /// Defaults tuned to the DDR3-1600 refresh cadence: a window of a few
    /// tREFI slots, re-arm pacing in the tens of thousands of cycles.
    fn default() -> Self {
        GuardbandConfig {
            window: 25_000,
            threshold: 4,
            hysteresis: 50_000,
            backoff_base: 25_000,
            backoff_cap: 6,
        }
    }
}

/// Sliding-window violation counter driving the degradation ladder.
#[derive(Debug, Clone)]
pub struct GuardbandMonitor {
    cfg: GuardbandConfig,
    /// Cycles of the violations inside the current window.
    recent: VecDeque<Cycle>,
    level: DegradeLevel,
    last_violation: Option<Cycle>,
    degrades: u64,
    rearms: u64,
    /// Backoff doublings accumulated so far (capped).
    backoff_exp: u32,
    /// Cycle the system entered a degraded level (`None` at full speed).
    degraded_since: Option<Cycle>,
    /// Completed degraded residency (closed intervals only).
    degraded_cycles: Cycle,
}

impl GuardbandMonitor {
    /// A monitor at full speed with the given thresholds.
    pub fn new(cfg: GuardbandConfig) -> Self {
        GuardbandMonitor {
            cfg,
            recent: VecDeque::new(),
            level: DegradeLevel::Full,
            last_violation: None,
            degrades: 0,
            rearms: 0,
            backoff_exp: 0,
            degraded_since: None,
            degraded_cycles: 0,
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &GuardbandConfig {
        &self.cfg
    }

    /// The current ladder rung.
    pub fn level(&self) -> DegradeLevel {
        self.level
    }

    /// Degradation steps taken so far.
    pub fn degrades(&self) -> u64 {
        self.degrades
    }

    /// Re-arm steps taken so far.
    pub fn rearms(&self) -> u64 {
        self.rearms
    }

    /// Cycles spent at any degraded level up to `now` (open interval
    /// included).
    pub fn degraded_cycles(&self, now: Cycle) -> Cycle {
        self.degraded_cycles
            + self
                .degraded_since
                .map_or(0, |since| now.saturating_sub(since))
    }

    /// Records one detected retention violation at `now`. Returns the
    /// degradation step it triggered, if the sliding window crossed the
    /// threshold.
    pub fn note_violation(&mut self, now: Cycle) -> Option<GuardbandTransition> {
        self.last_violation = Some(now);
        let horizon = now.saturating_sub(self.cfg.window);
        while self.recent.front().is_some_and(|&c| c < horizon) {
            self.recent.pop_front();
        }
        self.recent.push_back(now);
        if (self.recent.len() as u64) < u64::from(self.cfg.threshold.max(1)) {
            return None;
        }
        // Window tripped: one step down, counter reset so the next step
        // needs a fresh window's worth of violations.
        self.recent.clear();
        if self.level == DegradeLevel::FullRas {
            return None; // already at the bottom rung
        }
        self.level = self.level.down();
        self.degrades += 1;
        self.backoff_exp = (self.backoff_exp + 1).min(self.cfg.backoff_cap);
        if self.degraded_since.is_none() {
            self.degraded_since = Some(now);
        }
        Some(GuardbandTransition::Degrade(self.level))
    }

    /// Required violation-free cycles before the next re-arm step:
    /// hysteresis plus the exponential backoff earned by past degrades.
    fn rearm_quiet(&self) -> Cycle {
        let doublings = self.backoff_exp.saturating_sub(1).min(self.cfg.backoff_cap);
        self.cfg
            .hysteresis
            .saturating_add(self.cfg.backoff_base.saturating_mul(1 << doublings))
    }

    /// Cycle at which the next [`GuardbandMonitor::poll`] call can take a
    /// re-arm step, or `None` at full speed (no pending transition). An
    /// event-wheel driver must not jump past this edge without polling;
    /// polling earlier is a harmless no-op.
    pub fn next_rearm_cycle(&self) -> Option<Cycle> {
        (self.level != DegradeLevel::Full).then(|| {
            self.last_violation
                .unwrap_or(0)
                .saturating_add(self.rearm_quiet())
        })
    }

    /// Checks (once per tick) whether quiet time earned a re-arm step.
    /// Steps one rung per call; the cycle of full recovery closes the
    /// degraded-residency interval.
    pub fn poll(&mut self, now: Cycle) -> Option<GuardbandTransition> {
        if self.level == DegradeLevel::Full {
            return None;
        }
        let quiet = now.saturating_sub(self.last_violation.unwrap_or(0));
        if quiet < self.rearm_quiet() {
            return None;
        }
        self.level = self.level.up();
        self.rearms += 1;
        if self.level == DegradeLevel::Full {
            if let Some(since) = self.degraded_since.take() {
                self.degraded_cycles += now.saturating_sub(since);
            }
        }
        Some(GuardbandTransition::Rearm(self.level))
    }

    /// Closes the open degraded-residency interval at end of simulation.
    pub fn finish(&mut self, now: Cycle) {
        if let Some(since) = self.degraded_since.take() {
            self.degraded_cycles += now.saturating_sub(since);
            // Keep accounting stable if the owner calls finish twice.
            if self.level != DegradeLevel::Full {
                self.degraded_since = Some(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GuardbandConfig {
        GuardbandConfig {
            window: 1_000,
            threshold: 3,
            hysteresis: 5_000,
            backoff_base: 1_000,
            backoff_cap: 3,
        }
    }

    #[test]
    fn threshold_in_window_degrades_one_step() {
        let mut g = GuardbandMonitor::new(cfg());
        assert_eq!(g.note_violation(10), None);
        assert_eq!(g.note_violation(20), None);
        assert_eq!(
            g.note_violation(30),
            Some(GuardbandTransition::Degrade(DegradeLevel::NoSkip))
        );
        assert_eq!(g.level(), DegradeLevel::NoSkip);
        assert_eq!(g.degrades(), 1);
    }

    #[test]
    fn sparse_violations_never_trip() {
        let mut g = GuardbandMonitor::new(cfg());
        for i in 0..10u64 {
            assert_eq!(g.note_violation(i * 2_000), None, "violation {i}");
        }
        assert_eq!(g.level(), DegradeLevel::Full);
    }

    #[test]
    fn ladder_descends_to_full_ras_and_stops() {
        let mut g = GuardbandMonitor::new(cfg());
        for i in 0..3 {
            g.note_violation(i);
        }
        assert_eq!(g.level(), DegradeLevel::NoSkip);
        for i in 10..13 {
            g.note_violation(i);
        }
        assert_eq!(g.level(), DegradeLevel::FullRas);
        // Bottom rung: further windows change nothing.
        for i in 20..26 {
            g.note_violation(i);
        }
        assert_eq!(g.level(), DegradeLevel::FullRas);
        assert_eq!(g.degrades(), 2);
    }

    #[test]
    fn rearm_needs_hysteresis_plus_backoff() {
        let mut g = GuardbandMonitor::new(cfg());
        for i in 0..3 {
            g.note_violation(i);
        }
        // First degrade: quiet requirement is hysteresis + base.
        assert_eq!(g.poll(2 + 5_999), None);
        assert_eq!(
            g.poll(2 + 6_000),
            Some(GuardbandTransition::Rearm(DegradeLevel::Full))
        );
        assert_eq!(g.level(), DegradeLevel::Full);
        assert_eq!(g.rearms(), 1);
    }

    #[test]
    fn backoff_grows_with_each_degrade() {
        let mut g = GuardbandMonitor::new(cfg());
        for i in 0..3 {
            g.note_violation(i);
        }
        g.poll(10_000); // re-arm (quiet 6_000 needed)
        for i in 20_000..20_003 {
            g.note_violation(i);
        }
        // Second degrade: backoff doubled, quiet 5_000 + 2_000 needed.
        assert_eq!(g.poll(20_002 + 6_999), None);
        assert!(g.poll(20_002 + 7_000).is_some());
    }

    #[test]
    fn degraded_residency_is_accounted() {
        let mut g = GuardbandMonitor::new(cfg());
        for i in 100..103 {
            g.note_violation(i);
        }
        assert_eq!(g.degraded_cycles(1_102), 1_000);
        g.poll(102 + 6_000); // back to Full
        assert_eq!(g.degraded_cycles(50_000), 6_000);
        g.finish(60_000);
        assert_eq!(g.degraded_cycles(60_000), 6_000);
    }

    #[test]
    fn staged_rearm_steps_one_rung_per_poll() {
        let mut g = GuardbandMonitor::new(cfg());
        for i in 0..3 {
            g.note_violation(i);
        }
        for i in 10..13 {
            g.note_violation(i);
        }
        assert_eq!(g.level(), DegradeLevel::FullRas);
        let t = 12 + 8_000; // past the doubled backoff
        assert_eq!(
            g.poll(t),
            Some(GuardbandTransition::Rearm(DegradeLevel::NoSkip))
        );
        assert_eq!(
            g.poll(t + 1),
            Some(GuardbandTransition::Rearm(DegradeLevel::Full))
        );
        assert_eq!(g.rearms(), 2);
    }
}
