//! # mem-controller
//!
//! A DDR3 memory controller modeled after the paper's baseline (Table 4):
//! per-channel 32-entry read and write queues, write-drain watermarks 24/8,
//! FR-FCFS scheduling, page-interleaved address mapping, and JEDEC refresh
//! with postponement.
//!
//! Two extension points let DRAM-architecture backends (MCR in crate
//! `mcr-dram`, plus the TL-DRAM / CLR-DRAM / plain-DDR3 backends of its
//! `backend` module) plug in without this crate knowing anything about
//! any particular architecture:
//!
//! * [`DevicePolicy`] — chooses the row-timing class for every ACTIVATE
//!   (MCR's Early-Access / Early-Precharge, TL-DRAM's near/far segments,
//!   CLR-DRAM's coupled rows), observes each issued ACT
//!   (`on_activate`, for stateful backends), and decides, per refresh
//!   slot, whether to issue a normal REFRESH, a Fast-Refresh (shorter
//!   `tRFC`), or to skip the slot entirely (Refresh-Skipping). The
//!   baseline policy ([`NormalPolicy`]) always picks class 0 and normal
//!   refreshes.
//! * [`AddressMapper`] — translates physical addresses to DRAM coordinates;
//!   [`PageInterleave`] is the paper's policy, with permutation-based and
//!   bit-reversal variants for ablation.
//!
//! ## Example
//!
//! ```
//! use mem_controller::{ControllerConfig, MemoryController, NormalPolicy, PageInterleave};
//! use dram_device::{Geometry, PhysAddr, TimingSet};
//!
//! let geometry = Geometry::single_core_4gb();
//! let mut ctl = MemoryController::new(
//!     geometry,
//!     TimingSet::ddr3_1600(geometry.rows_per_bank),
//!     ControllerConfig::msc_default(),
//!     Box::new(PageInterleave::new(geometry)),
//!     Box::new(NormalPolicy),
//! );
//! let token = ctl.enqueue_read(0, PhysAddr(0x12345640)).expect("queue has space");
//! let mut done = Vec::new();
//! for cycle in 0..200 {
//!     done.extend(ctl.tick(cycle));
//! }
//! assert_eq!(done.len(), 1);
//! assert_eq!(done[0].token, token);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod guardband;
mod mapping;
mod policy;
mod refresh;
mod request;
mod stats;
mod telemetry;

pub use controller::{
    Completion, ControllerConfig, EdgeInfo, EdgeSource, MemoryController, RowPolicy, SchedulerKind,
};
pub use guardband::{DegradeLevel, GuardbandConfig, GuardbandMonitor, GuardbandTransition};
pub use mapping::{AddressMapper, BitReversal, PageInterleave, PermutationInterleave};
pub use policy::{DevicePolicy, NormalPolicy, RefreshAction};
pub use refresh::{PendingRefresh, RefreshScheduler, RefreshStats};
pub use request::{Request, ServiceClass};
pub use stats::ControllerStats;
pub use telemetry::CtlTelemetry;
