//! Physical-address → DRAM-coordinate mapping policies.
//!
//! The paper's baseline uses *page interleaving* (column bits lowest, so a
//! whole row — the DRAM "page" — is contiguous in the physical address
//! space, maximizing row-buffer locality), citing Zhang et al. (MICRO '00)
//! and Shao & Davis (SCOPES '05) for the permutation and bit-reversal
//! refinements we also provide for ablation.

use dram_device::{DramAddress, Geometry, PhysAddr};

/// Translates physical addresses to DRAM coordinates (and back, for tests
/// and tooling). Implementations must be bijective on cache-line addresses
/// within the geometry's capacity.
pub trait AddressMapper: Send {
    /// Decodes a physical address. Addresses beyond capacity wrap (the
    /// high-order bits are masked), matching trace-driven simulator
    /// convention.
    fn decode(&self, addr: PhysAddr) -> DramAddress;

    /// Re-encodes DRAM coordinates into the canonical physical address.
    fn encode(&self, addr: &DramAddress) -> PhysAddr;

    /// Human-readable policy name (used in experiment logs).
    fn name(&self) -> &'static str;
}

/// Field widths derived from a [`Geometry`], shared by the policies.
#[derive(Debug, Clone, Copy)]
struct Widths {
    line: u32,
    col: u32,
    chan: u32,
    bank: u32,
    rank: u32,
    row: u32,
}

impl Widths {
    fn of(g: &Geometry) -> Self {
        let log2 = |v: u64| -> u32 {
            assert!(v.is_power_of_two(), "geometry fields must be powers of two");
            v.trailing_zeros()
        };
        Widths {
            line: log2(g.line_bytes as u64),
            col: log2(g.cols_per_row as u64),
            chan: log2(g.channels as u64),
            bank: log2(g.banks as u64),
            rank: log2(g.ranks as u64),
            row: log2(g.rows_per_bank),
        }
    }
}

/// Page interleaving (the paper's baseline): from LSB to MSB,
/// `line | column | channel | bank | rank | row`.
///
/// Consecutive cache lines fill a row before moving to the next bank, so
/// streaming accesses enjoy row-buffer hits, while pages spread across
/// banks/ranks for bank-level parallelism.
#[derive(Debug, Clone, Copy)]
pub struct PageInterleave {
    g: Geometry,
    w: Widths,
}

impl PageInterleave {
    /// Mapper for `g`.
    pub fn new(g: Geometry) -> Self {
        PageInterleave {
            g,
            w: Widths::of(&g),
        }
    }
}

impl AddressMapper for PageInterleave {
    fn decode(&self, addr: PhysAddr) -> DramAddress {
        let w = self.w;
        let mut v = addr.0 >> w.line;
        let mut take = |bits: u32| -> u64 {
            let f = v & ((1u64 << bits) - 1);
            v >>= bits;
            f
        };
        let col = take(w.col) as u32;
        let channel = take(w.chan) as u8;
        let bank = take(w.bank) as u8;
        let rank = take(w.rank) as u8;
        let row = take(w.row);
        DramAddress {
            channel,
            rank,
            bank,
            row,
            col,
        }
    }

    fn encode(&self, a: &DramAddress) -> PhysAddr {
        let w = self.w;
        debug_assert!(self.g.contains(a));
        let mut v = a.row;
        v = (v << w.rank) | a.rank as u64;
        v = (v << w.bank) | a.bank as u64;
        v = (v << w.chan) | a.channel as u64;
        v = (v << w.col) | a.col as u64;
        PhysAddr(v << w.line)
    }

    fn name(&self) -> &'static str {
        "page-interleave"
    }
}

/// Permutation-based page interleaving (Zhang et al., MICRO '00): like
/// [`PageInterleave`] but the bank index is XOR-ed with the low row bits,
/// spreading row-conflicting addresses across banks.
#[derive(Debug, Clone, Copy)]
pub struct PermutationInterleave {
    inner: PageInterleave,
}

impl PermutationInterleave {
    /// Mapper for `g`.
    pub fn new(g: Geometry) -> Self {
        PermutationInterleave {
            inner: PageInterleave::new(g),
        }
    }

    fn xor_mask(&self, row: u64) -> u8 {
        let bank_bits = self.inner.w.bank;
        (row & ((1u64 << bank_bits) - 1)) as u8
    }
}

impl AddressMapper for PermutationInterleave {
    fn decode(&self, addr: PhysAddr) -> DramAddress {
        let mut a = self.inner.decode(addr);
        a.bank ^= self.xor_mask(a.row);
        a
    }

    fn encode(&self, a: &DramAddress) -> PhysAddr {
        let mut plain = *a;
        plain.bank ^= self.xor_mask(a.row);
        self.inner.encode(&plain)
    }

    fn name(&self) -> &'static str {
        "permutation-interleave"
    }
}

/// Bit-reversal mapping (Shao & Davis, SCOPES '05): the row index is
/// bit-reversed, scattering sequential pages across distant rows. Provided
/// for ablation of mapping sensitivity.
#[derive(Debug, Clone, Copy)]
pub struct BitReversal {
    inner: PageInterleave,
}

impl BitReversal {
    /// Mapper for `g`.
    pub fn new(g: Geometry) -> Self {
        BitReversal {
            inner: PageInterleave::new(g),
        }
    }

    fn reverse_row(&self, row: u64) -> u64 {
        let bits = self.inner.w.row;
        row.reverse_bits() >> (64 - bits)
    }
}

impl AddressMapper for BitReversal {
    fn decode(&self, addr: PhysAddr) -> DramAddress {
        let mut a = self.inner.decode(addr);
        a.row = self.reverse_row(a.row);
        a
    }

    fn encode(&self, a: &DramAddress) -> PhysAddr {
        let mut plain = *a;
        plain.row = self.reverse_row(a.row);
        self.inner.encode(&plain)
    }

    fn name(&self) -> &'static str {
        "bit-reversal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mappers(g: Geometry) -> Vec<Box<dyn AddressMapper>> {
        vec![
            Box::new(PageInterleave::new(g)),
            Box::new(PermutationInterleave::new(g)),
            Box::new(BitReversal::new(g)),
        ]
    }

    #[test]
    fn roundtrip_all_policies() {
        let g = Geometry::tiny();
        for m in mappers(g) {
            for line in 0..(g.capacity_bytes() / g.line_bytes as u64) {
                let pa = PhysAddr(line * g.line_bytes as u64);
                let da = m.decode(pa);
                assert!(g.contains(&da), "{}: {da} out of range", m.name());
                assert_eq!(m.encode(&da), pa, "{} roundtrip failed", m.name());
            }
        }
    }

    #[test]
    fn page_interleave_keeps_row_contiguous() {
        let g = Geometry::single_core_4gb();
        let m = PageInterleave::new(g);
        let base = m.decode(PhysAddr(0));
        for c in 1..g.cols_per_row as u64 {
            // With 1 channel, consecutive lines stay in the same row.
            let a = m.decode(PhysAddr(c * g.line_bytes as u64));
            assert_eq!(a.row, base.row);
            assert_eq!(a.bank, base.bank);
            assert_eq!(a.col, c as u32);
        }
        // The next line after a full row moves to another bank.
        let next = m.decode(PhysAddr(g.row_bytes()));
        assert_ne!(next.bank, base.bank);
        assert_eq!(next.col, 0);
    }

    #[test]
    fn paper_geometry_row_field_position() {
        // 4 GB: row bits are the top 15 bits of the 32-bit address.
        let g = Geometry::single_core_4gb();
        let m = PageInterleave::new(g);
        let a = m.decode(PhysAddr(1 << 17)); // first row-bit position
        assert_eq!(a.row, 1);
        assert_eq!(m.decode(PhysAddr((1 << 17) - 1)).row, 0);
    }

    #[test]
    fn permutation_differs_from_plain_on_some_rows() {
        let g = Geometry::single_core_4gb();
        let plain = PageInterleave::new(g);
        let perm = PermutationInterleave::new(g);
        let pa = PhysAddr(3 << 17); // row 3 -> xor mask 3
        assert_ne!(plain.decode(pa).bank, perm.decode(pa).bank);
    }
}
