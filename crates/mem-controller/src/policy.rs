//! Device-policy extension point (how the MCR layer plugs in).

use dram_device::DramAddress;
use std::any::Any;

/// What to do with one refresh slot (one tREFI tick for one rank).
///
/// The slot cadence is fixed by JEDEC (8K slots per retention window); the
/// paper's Refresh-Skipping (Fig. 9) drops a fraction of the slots whose
/// target rows lie in MCR regions, and Fast-Refresh shortens `tRFC` for
/// slots that do refresh MCR rows (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshAction {
    /// Issue a REFRESH with the baseline `tRFC`.
    Normal,
    /// Issue a REFRESH with the given `tRFC` override in cycles
    /// (Fast-Refresh).
    Fast(u32),
    /// Do not issue a REFRESH for this slot (Refresh-Skipping).
    Skip,
}

/// Per-command decisions delegated to the DRAM-architecture layer.
///
/// The baseline controller is MCR-agnostic; an implementation of this trait
/// injects the paper's three mechanisms:
/// Early-Access/Early-Precharge via `activate_class` (returning a relaxed
/// row-timing class for MCR rows) and Fast-Refresh/Refresh-Skipping via
/// `refresh_action`.
pub trait DevicePolicy: Send + Any {
    /// Row-timing class and extra raised wordlines for activating `addr`.
    ///
    /// Returns `(class, extra_wordlines)`: class 0 is the baseline timing;
    /// `extra_wordlines` is `K - 1` for a Kx MCR activation (energy
    /// accounting only).
    fn activate_class(&self, addr: &DramAddress) -> (dram_device::RowTimingClass, u32);

    /// Decision for the refresh slot whose device-internal counter (with
    /// the configured wiring) targets `slot_row` on `rank`.
    fn refresh_action(&mut self, rank: u8, slot_row: u64) -> RefreshAction;

    /// Row-timing classes this policy needs registered on each channel, in
    /// class-index order starting at 1 (class 0 is always baseline).
    ///
    /// Register every class the policy may ever use: classes are latched
    /// at controller construction, so a policy that supports runtime
    /// reconfiguration (MRS-driven MCR-mode change) must pre-register the
    /// classes of all reachable modes.
    fn timing_classes(&self) -> Vec<dram_device::RowTiming> {
        Vec::new()
    }

    /// Hook called once per issued ACTIVATE, after legality checks pass.
    ///
    /// Policies with per-row dynamic state (e.g. a CLR-DRAM-style
    /// coupling table) update it here; `activate_class` itself must stay
    /// `&self` because the scheduler probes candidate commands
    /// speculatively before committing to one.
    fn on_activate(&mut self, _addr: &DramAddress) {}

    /// Applies one guardband ladder rung (graceful timing degradation).
    ///
    /// The default is a no-op: a policy with no relaxed timing to give
    /// back simply ignores the ladder.
    fn apply_degrade_level(&mut self, _level: crate::guardband::DegradeLevel) {}

    /// Downcast hook so owners can reach policy-specific reconfiguration
    /// entry points (e.g. the MCR layer's MRS reprogramming) through the
    /// `Box<dyn DevicePolicy>` the controller holds.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Baseline policy: every row is a normal row; every refresh is normal.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalPolicy;

impl DevicePolicy for NormalPolicy {
    fn activate_class(&self, _addr: &DramAddress) -> (dram_device::RowTimingClass, u32) {
        (dram_device::RowTimingClass(0), 0)
    }

    fn refresh_action(&mut self, _rank: u8, _slot_row: u64) -> RefreshAction {
        RefreshAction::Normal
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_policy_is_baseline() {
        let mut p = NormalPolicy;
        let (class, extra) = p.activate_class(&DramAddress::default());
        assert_eq!(class, dram_device::RowTimingClass(0));
        assert_eq!(extra, 0);
        assert_eq!(p.refresh_action(0, 0), RefreshAction::Normal);
        assert!(p.timing_classes().is_empty());
    }
}
