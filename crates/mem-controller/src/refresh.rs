//! Controller-side refresh scheduling.
//!
//! JEDEC requires 8K REFRESH commands per retention window, one every
//! `tREFI` on average, with up to 8 postponed. The scheduler tracks, per
//! rank, the slots that have come due and the [`RefreshAction`] the device
//! policy chose for each; the controller issues them opportunistically and
//! forces them as the backlog approaches the postponement cap.

use crate::policy::{DevicePolicy, RefreshAction};
use dram_device::{Cycle, RefreshCounter, RefreshWiring};
use std::collections::VecDeque;

/// Per-rank refresh bookkeeping.
#[derive(Debug)]
struct RankRefresh {
    /// Shadow of the device-internal refresh row counter.
    counter: RefreshCounter,
    /// Actions for slots that are due but not yet issued.
    backlog: VecDeque<RefreshAction>,
    /// Next slot deadline in memory cycles.
    next_due: Cycle,
}

/// Statistics reported by the refresh scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// REFRESH commands issued with baseline tRFC.
    pub normal: u64,
    /// REFRESH commands issued with a Fast-Refresh override.
    pub fast: u64,
    /// Slots skipped entirely (Refresh-Skipping).
    pub skipped: u64,
}

/// Tracks refresh slot deadlines and backlog for every rank of a channel.
#[derive(Debug)]
pub struct RefreshScheduler {
    ranks: Vec<RankRefresh>,
    t_refi: Cycle,
    postpone_cap: usize,
    stats: RefreshStats,
}

impl RefreshScheduler {
    /// Scheduler for `ranks` ranks with `row_bits`-bit row addresses and
    /// slot period `t_refi`, using `wiring` for the shadow counter.
    pub fn new(ranks: u8, row_bits: u32, t_refi: Cycle, wiring: RefreshWiring) -> Self {
        RefreshScheduler {
            ranks: (0..ranks)
                .map(|i| RankRefresh {
                    counter: RefreshCounter::new(row_bits, wiring),
                    backlog: VecDeque::new(),
                    // Stagger ranks so both don't demand the bus at once.
                    next_due: t_refi / ranks as Cycle * i as Cycle + t_refi,
                })
                .collect(),
            t_refi,
            postpone_cap: 8,
            stats: RefreshStats::default(),
        }
    }

    /// Advances slot deadlines to `now`, consulting `policy` for each slot
    /// that comes due. Skip slots are consumed immediately (no command
    /// needed); others join the backlog.
    pub fn tick(&mut self, now: Cycle, policy: &mut dyn DevicePolicy) {
        for (rank_id, r) in self.ranks.iter_mut().enumerate() {
            while now >= r.next_due {
                r.next_due += self.t_refi;
                // Advance the shadow counter at decision time: each due
                // slot targets the next row in the sweep even while a
                // backlog of unissued refreshes exists.
                let row = r.counter.advance();
                match policy.refresh_action(rank_id as u8, row) {
                    RefreshAction::Skip => {
                        self.stats.skipped += 1;
                    }
                    action => {
                        r.backlog.push_back(action);
                    }
                }
            }
        }
    }

    /// Number of pending (due, unissued) refreshes for `rank`.
    pub fn backlog(&self, rank: u8) -> usize {
        self.ranks[rank as usize].backlog.len()
    }

    /// True when `rank`'s backlog is close enough to the postponement cap
    /// that the controller must prioritize refreshing over requests.
    pub fn urgent(&self, rank: u8) -> bool {
        self.backlog(rank) >= self.postpone_cap - 1
    }

    /// The action for `rank`'s oldest pending refresh, if any.
    pub fn peek(&self, rank: u8) -> Option<RefreshAction> {
        self.ranks[rank as usize].backlog.front().copied()
    }

    /// Consumes the oldest pending refresh for `rank` after the controller
    /// has successfully issued it. Returns the action consumed, or `None`
    /// when the backlog was empty (nothing to consume).
    pub fn consume(&mut self, rank: u8) -> Option<RefreshAction> {
        let r = &mut self.ranks[rank as usize];
        let action = r.backlog.pop_front()?;
        match action {
            RefreshAction::Normal => self.stats.normal += 1,
            RefreshAction::Fast(_) => self.stats.fast += 1,
            RefreshAction::Skip => unreachable!("skips never enter the backlog"),
        }
        Some(action)
    }

    /// Aggregate refresh statistics.
    pub fn stats(&self) -> RefreshStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NormalPolicy;

    #[test]
    fn slots_accumulate_at_trefi() {
        let mut s = RefreshScheduler::new(1, 6, 100, RefreshWiring::Reversed);
        let mut p = NormalPolicy;
        s.tick(99, &mut p);
        assert_eq!(s.backlog(0), 0);
        s.tick(100, &mut p);
        assert_eq!(s.backlog(0), 1);
        s.tick(450, &mut p);
        assert_eq!(s.backlog(0), 4);
        assert!(!s.urgent(0));
        s.tick(800, &mut p);
        assert!(s.urgent(0));
    }

    #[test]
    fn consume_pops_and_counts() {
        let mut s = RefreshScheduler::new(1, 6, 100, RefreshWiring::Reversed);
        let mut p = NormalPolicy;
        s.tick(300, &mut p);
        // Slots due at 100, 200, 300.
        assert_eq!(s.backlog(0), 3);
        assert_eq!(s.peek(0), Some(RefreshAction::Normal));
        s.consume(0);
        assert_eq!(s.backlog(0), 2);
        assert_eq!(s.stats().normal, 1);
    }

    #[test]
    fn skipping_policy_never_queues() {
        struct SkipAll;
        impl DevicePolicy for SkipAll {
            fn activate_class(
                &self,
                _: &dram_device::DramAddress,
            ) -> (dram_device::RowTimingClass, u32) {
                (dram_device::RowTimingClass(0), 0)
            }
            fn refresh_action(&mut self, _: u8, _: u64) -> RefreshAction {
                RefreshAction::Skip
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut s = RefreshScheduler::new(2, 6, 100, RefreshWiring::Reversed);
        let mut p = SkipAll;
        s.tick(1000, &mut p);
        assert_eq!(s.backlog(0), 0);
        assert_eq!(s.backlog(1), 0);
        assert!(s.stats().skipped >= 18);
    }

    #[test]
    fn ranks_are_staggered() {
        let mut s = RefreshScheduler::new(2, 6, 100, RefreshWiring::Reversed);
        let mut p = NormalPolicy;
        s.tick(120, &mut p);
        // Rank 0 due at 100, rank 1 at 150.
        assert_eq!(s.backlog(0), 1);
        assert_eq!(s.backlog(1), 0);
        s.tick(160, &mut p);
        assert_eq!(s.backlog(1), 1);
    }
}
