//! Controller-side refresh scheduling.
//!
//! JEDEC requires 8K REFRESH commands per retention window, one every
//! `tREFI` on average, with up to 8 postponed. The scheduler tracks, per
//! rank, the slots that have come due and the [`RefreshAction`] the device
//! policy chose for each; the controller issues them opportunistically and
//! forces them as the backlog approaches the postponement cap.
//!
//! When a [`mcr_faults::FaultPlan`] is installed, due slots pass through
//! its refresh-fault stream first: a *dropped* slot is consumed without
//! ever issuing a command (the targeted row silently misses its restore),
//! and a *late* slot enters the backlog with a `not_before` release cycle
//! the controller must respect.

use crate::policy::{DevicePolicy, RefreshAction};
use dram_device::{Cycle, RefreshCounter, RefreshWiring};
use mcr_faults::{FaultPlan, RefreshFault};
use std::collections::VecDeque;

/// One due-but-unissued refresh slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingRefresh {
    /// Refresh-counter row the slot targets.
    pub row: u64,
    /// Device action the policy chose for the slot.
    pub action: RefreshAction,
    /// Earliest cycle the controller may issue it (0 normally; pushed
    /// into the future by a late-refresh fault).
    pub not_before: Cycle,
}

/// Per-rank refresh bookkeeping.
#[derive(Debug)]
struct RankRefresh {
    /// Shadow of the device-internal refresh row counter.
    counter: RefreshCounter,
    /// Slots that are due but not yet issued.
    backlog: VecDeque<PendingRefresh>,
    /// Next slot deadline in memory cycles.
    next_due: Cycle,
    /// Monotone count of slots that have come due (the fault-plan's
    /// per-rank refresh-fault stream coordinate).
    slot_index: u64,
}

/// Statistics reported by the refresh scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// REFRESH commands issued with baseline tRFC.
    pub normal: u64,
    /// REFRESH commands issued with a Fast-Refresh override.
    pub fast: u64,
    /// Slots skipped entirely (Refresh-Skipping).
    pub skipped: u64,
    /// Slots consumed by an injected dropped-refresh fault (no command
    /// was ever issued for them).
    pub dropped: u64,
    /// Slots delayed by an injected late-refresh fault.
    pub late: u64,
}

/// Tracks refresh slot deadlines and backlog for every rank of a channel.
#[derive(Debug)]
pub struct RefreshScheduler {
    ranks: Vec<RankRefresh>,
    t_refi: Cycle,
    postpone_cap: usize,
    stats: RefreshStats,
}

impl RefreshScheduler {
    /// Scheduler for `ranks` ranks with `row_bits`-bit row addresses and
    /// slot period `t_refi`, using `wiring` for the shadow counter.
    pub fn new(ranks: u8, row_bits: u32, t_refi: Cycle, wiring: RefreshWiring) -> Self {
        RefreshScheduler {
            ranks: (0..ranks)
                .map(|i| RankRefresh {
                    counter: RefreshCounter::new(row_bits, wiring),
                    backlog: VecDeque::new(),
                    // Stagger ranks so both don't demand the bus at once.
                    next_due: t_refi / ranks as Cycle * i as Cycle + t_refi,
                    slot_index: 0,
                })
                .collect(),
            t_refi,
            postpone_cap: 8,
            stats: RefreshStats::default(),
        }
    }

    /// Advances slot deadlines to `now`, consulting `policy` for each slot
    /// that comes due and `faults` (when armed) for injected refresh
    /// faults. Skip and dropped slots are consumed immediately (no command
    /// needed); others join the backlog. Returns `true` when at least one
    /// slot came due this call (scheduler state changed).
    pub fn tick(
        &mut self,
        now: Cycle,
        policy: &mut dyn DevicePolicy,
        faults: Option<&FaultPlan>,
    ) -> bool {
        let mut any_due = false;
        for (rank_id, r) in self.ranks.iter_mut().enumerate() {
            while now >= r.next_due {
                any_due = true;
                r.next_due += self.t_refi;
                // Advance the shadow counter at decision time: each due
                // slot targets the next row in the sweep even while a
                // backlog of unissued refreshes exists.
                let row = r.counter.advance();
                let slot = r.slot_index;
                r.slot_index += 1;
                match policy.refresh_action(rank_id as u8, row) {
                    RefreshAction::Skip => {
                        self.stats.skipped += 1;
                    }
                    action => {
                        let fault = faults
                            .map_or(RefreshFault::None, |p| p.refresh_fault(rank_id as u8, slot));
                        match fault {
                            RefreshFault::Dropped => self.stats.dropped += 1,
                            RefreshFault::Late(delay) => {
                                self.stats.late += 1;
                                r.backlog.push_back(PendingRefresh {
                                    row,
                                    action,
                                    not_before: now.saturating_add(delay),
                                });
                            }
                            RefreshFault::None => r.backlog.push_back(PendingRefresh {
                                row,
                                action,
                                not_before: 0,
                            }),
                        }
                    }
                }
            }
        }
        any_due
    }

    /// Number of pending (due, unissued) refreshes for `rank`.
    pub fn backlog(&self, rank: u8) -> usize {
        self.ranks[rank as usize].backlog.len()
    }

    /// Cycle the next refresh slot of `rank` comes due. Late-refresh
    /// faults stamp `not_before` relative to the cycle [`RefreshScheduler::tick`]
    /// observes the slot, so an event-wheel driver must never jump past
    /// this deadline without ticking the scheduler on it.
    pub fn next_due(&self, rank: u8) -> Cycle {
        self.ranks[rank as usize].next_due
    }

    /// True when `rank`'s backlog is close enough to the postponement cap
    /// that the controller must prioritize refreshing over requests.
    pub fn urgent(&self, rank: u8) -> bool {
        self.backlog(rank) >= self.postpone_cap - 1
    }

    /// `rank`'s oldest pending refresh, if any. The caller must honor its
    /// `not_before` release cycle before issuing.
    pub fn peek(&self, rank: u8) -> Option<PendingRefresh> {
        self.ranks[rank as usize].backlog.front().copied()
    }

    /// Consumes the oldest pending refresh for `rank` after the controller
    /// has successfully issued it. Returns the slot consumed, or `None`
    /// when the backlog was empty (nothing to consume).
    pub fn consume(&mut self, rank: u8) -> Option<PendingRefresh> {
        let r = &mut self.ranks[rank as usize];
        let pending = r.backlog.pop_front()?;
        match pending.action {
            RefreshAction::Normal => self.stats.normal += 1,
            RefreshAction::Fast(_) => self.stats.fast += 1,
            RefreshAction::Skip => unreachable!("skips never enter the backlog"),
        }
        Some(pending)
    }

    /// Aggregate refresh statistics.
    pub fn stats(&self) -> RefreshStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::NormalPolicy;

    #[test]
    fn slots_accumulate_at_trefi() {
        let mut s = RefreshScheduler::new(1, 6, 100, RefreshWiring::Reversed);
        let mut p = NormalPolicy;
        s.tick(99, &mut p, None);
        assert_eq!(s.backlog(0), 0);
        s.tick(100, &mut p, None);
        assert_eq!(s.backlog(0), 1);
        s.tick(450, &mut p, None);
        assert_eq!(s.backlog(0), 4);
        assert!(!s.urgent(0));
        s.tick(800, &mut p, None);
        assert!(s.urgent(0));
    }

    #[test]
    fn consume_pops_and_counts() {
        let mut s = RefreshScheduler::new(1, 6, 100, RefreshWiring::Reversed);
        let mut p = NormalPolicy;
        s.tick(300, &mut p, None);
        // Slots due at 100, 200, 300.
        assert_eq!(s.backlog(0), 3);
        let front = s.peek(0).expect("backlog non-empty");
        assert_eq!(front.action, RefreshAction::Normal);
        assert_eq!(front.not_before, 0);
        s.consume(0);
        assert_eq!(s.backlog(0), 2);
        assert_eq!(s.stats().normal, 1);
    }

    #[test]
    fn pending_slots_carry_the_counter_row() {
        let mut s = RefreshScheduler::new(1, 6, 100, RefreshWiring::Direct);
        let mut p = NormalPolicy;
        s.tick(300, &mut p, None);
        // Direct wiring: the sweep visits rows 0, 1, 2 in order.
        let rows: Vec<u64> = (0..3).filter_map(|_| s.consume(0).map(|f| f.row)).collect();
        assert_eq!(rows, vec![0, 1, 2]);
    }

    #[test]
    fn skipping_policy_never_queues() {
        struct SkipAll;
        impl DevicePolicy for SkipAll {
            fn activate_class(
                &self,
                _: &dram_device::DramAddress,
            ) -> (dram_device::RowTimingClass, u32) {
                (dram_device::RowTimingClass(0), 0)
            }
            fn refresh_action(&mut self, _: u8, _: u64) -> RefreshAction {
                RefreshAction::Skip
            }
            fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
                self
            }
        }
        let mut s = RefreshScheduler::new(2, 6, 100, RefreshWiring::Reversed);
        let mut p = SkipAll;
        s.tick(1000, &mut p, None);
        assert_eq!(s.backlog(0), 0);
        assert_eq!(s.backlog(1), 0);
        assert!(s.stats().skipped >= 18);
    }

    #[test]
    fn ranks_are_staggered() {
        let mut s = RefreshScheduler::new(2, 6, 100, RefreshWiring::Reversed);
        let mut p = NormalPolicy;
        s.tick(120, &mut p, None);
        // Rank 0 due at 100, rank 1 at 150.
        assert_eq!(s.backlog(0), 1);
        assert_eq!(s.backlog(1), 0);
        s.tick(160, &mut p, None);
        assert_eq!(s.backlog(1), 1);
    }

    #[test]
    fn dropped_faults_consume_slots_without_queuing() {
        let plan = FaultPlan::new(7).with_refresh_drops(1.0);
        let mut s = RefreshScheduler::new(1, 6, 100, RefreshWiring::Reversed);
        let mut p = NormalPolicy;
        s.tick(1000, &mut p, Some(&plan));
        assert_eq!(s.backlog(0), 0, "all slots dropped");
        assert_eq!(s.stats().dropped, 10);
        assert_eq!(s.stats().normal, 0);
    }

    #[test]
    fn late_faults_set_a_release_cycle() {
        let plan = FaultPlan::new(7).with_late_refreshes(1.0, 500);
        let mut s = RefreshScheduler::new(1, 6, 100, RefreshWiring::Reversed);
        let mut p = NormalPolicy;
        s.tick(100, &mut p, None);
        s.tick(200, &mut p, Some(&plan));
        assert_eq!(s.backlog(0), 2);
        let healthy = s.consume(0).expect("first slot queued without plan");
        assert_eq!(healthy.not_before, 0);
        let late = s.peek(0).expect("late slot queued");
        assert_eq!(late.not_before, 700);
        assert_eq!(s.stats().late, 1);
    }
}
