//! In-flight memory requests.

use dram_device::{Cycle, DramAddress, PhysAddr, ReqKind};

/// How a request was ultimately serviced, for row-buffer statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// Row was already open: CAS only.
    RowHit,
    /// Bank was closed: ACT + CAS.
    RowMiss,
    /// Another row was open: PRE + ACT + CAS.
    RowConflict,
}

/// One queued read or write request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Controller-wide unique id; echoed back to the core on completion.
    pub token: u64,
    /// Issuing core.
    pub core_id: u32,
    /// Read or write.
    pub kind: ReqKind,
    /// Original physical address.
    pub phys: PhysAddr,
    /// Decoded DRAM coordinates.
    pub dram: DramAddress,
    /// Memory cycle at which the request entered the queue.
    pub enqueued_at: Cycle,
    /// Whether a PRECHARGE has been issued on behalf of this request.
    pub did_precharge: bool,
    /// Whether an ACTIVATE has been issued on behalf of this request.
    pub did_activate: bool,
}

impl Request {
    /// Classifies the completed request for row-buffer statistics.
    pub fn service_class(&self) -> ServiceClass {
        match (self.did_precharge, self.did_activate) {
            (true, _) => ServiceClass::RowConflict,
            (false, true) => ServiceClass::RowMiss,
            (false, false) => ServiceClass::RowHit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> Request {
        Request {
            token: 0,
            core_id: 0,
            kind: ReqKind::Read,
            phys: PhysAddr(0),
            dram: DramAddress::default(),
            enqueued_at: 0,
            did_precharge: false,
            did_activate: false,
        }
    }

    #[test]
    fn service_class_from_flags() {
        assert_eq!(req().service_class(), ServiceClass::RowHit);
        let mut m = req();
        m.did_activate = true;
        assert_eq!(m.service_class(), ServiceClass::RowMiss);
        m.did_precharge = true;
        assert_eq!(m.service_class(), ServiceClass::RowConflict);
    }
}
