//! Aggregate controller statistics.

use crate::refresh::RefreshStats;

/// End-of-run statistics for one memory controller.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControllerStats {
    /// Read requests completed.
    pub reads_done: u64,
    /// Write requests drained to DRAM.
    pub writes_done: u64,
    /// Sum of read latencies in memory cycles (enqueue → last data beat).
    pub read_latency_sum: u64,
    /// Reads serviced as row-buffer hits.
    pub row_hits: u64,
    /// Reads/writes serviced with the bank closed (ACT needed).
    pub row_misses: u64,
    /// Reads/writes that had to close another row first.
    pub row_conflicts: u64,
    /// Memory cycles the channel spent in write-drain mode.
    pub drain_cycles: u64,
    /// Refresh scheduler statistics.
    pub refresh: RefreshStats,
    /// Fast-class ACTIVATEs rejected by the retention margin detector and
    /// reissued with the full-restore baseline class.
    pub retention_retries: u64,
    /// Guardband degradation steps taken (ladder moves down).
    pub guardband_degrades: u64,
    /// Guardband re-arm steps taken (ladder moves back up).
    pub guardband_rearms: u64,
    /// Memory cycles spent at any degraded guardband level.
    pub guardband_degraded_cycles: u64,
}

impl ControllerStats {
    /// Mean read latency in memory cycles.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_done == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_done as f64
        }
    }

    /// Fraction of serviced requests that hit the row buffer.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_guard_zero() {
        let s = ControllerStats::default();
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn averages_compute() {
        let s = ControllerStats {
            reads_done: 4,
            read_latency_sum: 100,
            row_hits: 3,
            row_misses: 1,
            ..Default::default()
        };
        assert_eq!(s.avg_read_latency(), 25.0);
        assert_eq!(s.row_hit_rate(), 0.75);
    }
}
