//! Controller-side telemetry (feature `telemetry`).
//!
//! [`CtlTelemetry`] aggregates what the scheduler *decided* — one
//! counter per decision class, queue-depth histograms sampled once per
//! tick per channel, and the end-to-end read queue latency (enqueue to
//! last data beat). The structs always exist so report shapes stay
//! stable; the recording calls in `controller.rs` are gated behind the
//! `telemetry` cargo feature. An optional [`mcr_telemetry::TraceSink`]
//! additionally receives one event per issued command for offline
//! inspection (`mcr_sim --trace-out`).

use mcr_telemetry::{Counter, LatencyHistogram};

/// Scheduler-decision counters and queue histograms for one
/// [`crate::MemoryController`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CtlTelemetry {
    /// Read-queue depth, sampled once per tick per channel.
    pub read_queue_depth: LatencyHistogram,
    /// Write-queue depth, sampled once per tick per channel.
    pub write_queue_depth: LatencyHistogram,
    /// Read round-trip latency (enqueue cycle to last data beat).
    pub read_latency: LatencyHistogram,
    /// CAS-read decisions issued.
    pub sched_cas_read: Counter,
    /// CAS-write decisions issued (write drain).
    pub sched_cas_write: Counter,
    /// ACTIVATE decisions issued.
    pub sched_activates: Counter,
    /// PRECHARGE decisions issued (conflict or idle-rank closes).
    pub sched_precharges: Counter,
    /// REFRESH decisions issued (normal and fast).
    pub sched_refreshes: Counter,
    /// Fast-class ACTIVATEs the retention detector rejected; each was
    /// retried in the same cycle with the full-restore baseline class.
    pub retention_retries: Counter,
    /// Guardband degradation steps (ladder moves down).
    pub guardband_degrades: Counter,
    /// Guardband re-arm steps (ladder moves back up).
    pub guardband_rearms: Counter,
}

impl CtlTelemetry {
    /// Folds another controller's telemetry into this one.
    pub fn merge(&mut self, other: &CtlTelemetry) {
        self.read_queue_depth.merge(&other.read_queue_depth);
        self.write_queue_depth.merge(&other.write_queue_depth);
        self.read_latency.merge(&other.read_latency);
        self.sched_cas_read.merge(&other.sched_cas_read);
        self.sched_cas_write.merge(&other.sched_cas_write);
        self.sched_activates.merge(&other.sched_activates);
        self.sched_precharges.merge(&other.sched_precharges);
        self.sched_refreshes.merge(&other.sched_refreshes);
        self.retention_retries.merge(&other.retention_retries);
        self.guardband_degrades.merge(&other.guardband_degrades);
        self.guardband_rearms.merge(&other.guardband_rearms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = CtlTelemetry::default();
        let mut b = CtlTelemetry::default();
        a.sched_activates.inc();
        a.read_queue_depth.record(3);
        b.sched_activates.add(2);
        b.read_queue_depth.record(5);
        a.merge(&b);
        assert_eq!(a.sched_activates.get(), 3);
        assert_eq!(a.read_queue_depth.count(), 2);
        assert_eq!(a.read_queue_depth.max(), Some(5));
    }
}
