//! Randomized (seeded, deterministic) tests for the memory controller —
//! a dependency-free replacement for the former `proptest` suite.

use dram_device::{Geometry, PhysAddr, TimingSet};
use mem_controller::{
    AddressMapper, BitReversal, ControllerConfig, MemoryController, NormalPolicy, PageInterleave,
    PermutationInterleave, RowPolicy, SchedulerKind,
};
use sim_rng::SmallRng;

fn controller(cfg: ControllerConfig) -> MemoryController {
    let g = Geometry::tiny();
    MemoryController::new(
        g,
        TimingSet::default(),
        cfg,
        Box::new(PageInterleave::new(g)),
        Box::new(NormalPolicy),
    )
}

/// Every mapping policy is a bijection on cache-line addresses for the
/// paper's real geometries, not just the tiny test one.
#[test]
fn mapping_bijective_on_real_geometry() {
    let mut rng = SmallRng::seed_from_u64(0xE1);
    let g = Geometry::single_core_4gb();
    let mappers: Vec<Box<dyn AddressMapper>> = vec![
        Box::new(PageInterleave::new(g)),
        Box::new(PermutationInterleave::new(g)),
        Box::new(BitReversal::new(g)),
    ];
    for _ in 0..50 {
        let n = rng.gen_range(1..64usize);
        let lines: Vec<u64> = (0..n).map(|_| rng.gen_range(0..(1u64 << 26))).collect();
        for m in &mappers {
            for &l in &lines {
                let pa = PhysAddr(l * 64);
                let d = m.decode(pa);
                assert!(g.contains(&d), "{}: {d}", m.name());
                assert_eq!(m.encode(&d), pa, "{} roundtrip", m.name());
            }
        }
    }
}

/// Conservation: every accepted read completes exactly once, with a
/// latency of at least CL + burst, under arbitrary interleavings of reads
/// and writes and any scheduler/row-policy combination.
#[test]
fn reads_complete_exactly_once() {
    let mut rng = SmallRng::seed_from_u64(0xE2);
    for _ in 0..60 {
        let n = rng.gen_range(1..80usize);
        let ops: Vec<(bool, u64)> = (0..n)
            .map(|_| (rng.gen_bool(0.5), rng.gen_range(0..512u64)))
            .collect();
        let mut cfg = ControllerConfig::msc_default();
        cfg.scheduler = if rng.gen_bool(0.5) {
            SchedulerKind::Fcfs
        } else {
            SchedulerKind::FrFcfs
        };
        cfg.row_policy = if rng.gen_bool(0.5) {
            RowPolicy::Closed
        } else {
            RowPolicy::Open
        };
        let mut ctl = controller(cfg);
        let mut now = 0u64;
        let mut expected = Vec::new();
        let mut seen = std::collections::HashMap::new();
        for &(is_read, line) in &ops {
            // Spread submissions out a little so queues drain.
            // (No latency floor asserted here: store-to-load forwarded
            // reads legitimately complete in ~0 cycles.)
            for _ in 0..3 {
                for c in ctl.tick(now) {
                    *seen.entry(c.token).or_insert(0u32) += 1;
                }
                now += 1;
            }
            let addr = PhysAddr(line * 64);
            if is_read {
                if let Some(t) = ctl.enqueue_read(0, addr) {
                    expected.push(t);
                }
            } else {
                let _ = ctl.enqueue_write(0, addr);
            }
        }
        // Drain.
        for _ in 0..60_000 {
            if ctl.idle() {
                break;
            }
            for c in ctl.tick(now) {
                *seen.entry(c.token).or_insert(0u32) += 1;
            }
            now += 1;
        }
        assert!(ctl.idle(), "controller failed to drain");
        for t in &expected {
            // Forwarded reads complete with zero service latency and are
            // not subject to the CL+burst floor; they are counted too.
            assert!(seen.contains_key(t), "read {t} never completed");
        }
        let total: u32 = seen.values().copied().sum();
        assert_eq!(
            total as usize,
            expected.len(),
            "duplicate or lost completions"
        );
        assert!(seen.values().all(|&v| v == 1));
    }
}

/// Queue capacities are hard limits regardless of traffic pattern.
#[test]
fn queue_caps_respected() {
    let mut rng = SmallRng::seed_from_u64(0xE3);
    for _ in 0..20 {
        let n = rng.gen_range(1..200usize);
        let lines: Vec<u64> = (0..n).map(|_| rng.gen_range(0..4096u64)).collect();
        let mut ctl = controller(ControllerConfig::msc_default());
        let mut now = 0;
        for &line in &lines {
            ctl.enqueue_read(0, PhysAddr(line * 64));
            ctl.enqueue_write(0, PhysAddr((line ^ 1) * 64));
            assert!(ctl.read_queue_len(0) <= 32);
            assert!(ctl.write_queue_len(0) <= 32);
            if line % 3 == 0 {
                ctl.tick(now);
                now += 1;
            }
        }
    }
}

/// The latency floor in `reads_complete_exactly_once` must not apply to
/// store-to-load forwarded reads — regression guard for that exemption.
#[test]
fn forwarded_reads_have_low_latency() {
    let mut ctl = controller(ControllerConfig::msc_default());
    assert!(ctl.enqueue_write(0, PhysAddr(0)));
    let t = ctl.enqueue_read(0, PhysAddr(0)).unwrap();
    let mut done = Vec::new();
    for now in 0..200 {
        done.extend(ctl.tick(now));
    }
    let c = done.iter().find(|c| c.token == t).expect("read completed");
    assert!(c.latency < 15, "forwarded read latency {}", c.latency);
}
