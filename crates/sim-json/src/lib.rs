//! # sim-json
//!
//! A zero-dependency JSON value type with a strict parser and a
//! deterministic serializer, in the spirit of the in-tree [`sim-rng`]
//! precedent: the workspace must stay offline-buildable, so instead of
//! pulling `serde_json` we pin a small, fully-tested codec here.
//!
//! The workspace historically only *emitted* JSON by hand
//! (`mcr_dram::telemetry_to_json`, `SweepResults::to_json`, the golden
//! snapshots). This crate adds the other direction — parsing — which the
//! `mcr-serve` protocol needs, and which lets tests validate the
//! hand-rolled emitters instead of trusting them.
//!
//! Design points:
//!
//! * **Order-preserving objects.** [`Json::Obj`] stores members as a
//!   `Vec<(String, Json)>` in insertion/document order, so
//!   `parse(serialize(v)) == v` holds structurally *and* byte-wise for
//!   re-serialization. Duplicate keys are rejected at parse time
//!   ([`JsonErrorKind::DuplicateKey`]) — the protocol never produces
//!   them and silently-last-wins is a classic grief vector.
//! * **Typed, panic-free errors.** Every malformed input maps to a
//!   [`JsonError`] carrying a [`JsonErrorKind`] and a byte offset; the
//!   parser never panics (fuzzed in `tests/proptests.rs`).
//! * **Finite numbers only.** JSON has no NaN/Infinity literals; the
//!   serializer renders non-finite numbers as `null`, matching the
//!   workspace's existing emitters.
//! * **Bounded recursion.** Nesting deeper than [`MAX_DEPTH`] is a typed
//!   error, not a stack overflow.
//!
//! ```
//! use sim_json::Json;
//!
//! let v = Json::parse(r#"{"cmd": "ping", "seq": 7}"#)?;
//! assert_eq!(v.get("cmd").and_then(Json::as_str), Some("ping"));
//! assert_eq!(v.get("seq").and_then(Json::as_u64), Some(7));
//! assert_eq!(Json::parse(&v.to_string())?, v);
//! # Ok::<(), sim_json::JsonError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Maximum nesting depth the parser accepts before returning
/// [`JsonErrorKind::TooDeep`]. Generous for protocol traffic (requests
/// nest 3–4 levels) while keeping recursion bounded on hostile input.
pub const MAX_DEPTH: usize = 128;

/// A JSON document: the usual six value kinds.
///
/// Objects preserve member order (a `Vec`, not a map), so documents
/// round-trip byte-identically through parse → serialize.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`; integers up to 2^53 are exact.
    Num(f64),
    /// A string (unescaped, i.e. the logical character sequence).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion/document order.
    Obj(Vec<(String, Json)>),
}

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Input ended inside a value, string, or literal.
    UnexpectedEof,
    /// A character that cannot start or continue the expected token.
    UnexpectedChar(char),
    /// Valid document followed by non-whitespace trailing bytes.
    TrailingData,
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// Malformed `\` escape inside a string.
    BadEscape,
    /// Malformed `\uXXXX` sequence (bad hex digits or a lone surrogate).
    BadUnicode,
    /// Malformed number token.
    BadNumber,
    /// An object repeated a member name.
    DuplicateKey(String),
    /// A literal control character (U+0000..U+001F) inside a string.
    ControlInString,
}

/// A parse failure: the kind plus the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub kind: JsonErrorKind,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            JsonErrorKind::UnexpectedEof => "unexpected end of input".to_string(),
            JsonErrorKind::UnexpectedChar(c) => format!("unexpected character {c:?}"),
            JsonErrorKind::TrailingData => "trailing data after the document".to_string(),
            JsonErrorKind::TooDeep => format!("nesting deeper than {MAX_DEPTH}"),
            JsonErrorKind::BadEscape => "invalid string escape".to_string(),
            JsonErrorKind::BadUnicode => "invalid \\u escape".to_string(),
            JsonErrorKind::BadNumber => "malformed number".to_string(),
            JsonErrorKind::DuplicateKey(k) => format!("duplicate object key {k:?}"),
            JsonErrorKind::ControlInString => "raw control character in string".to_string(),
        };
        write!(f, "{} at byte {}", what, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (leading/trailing whitespace
    /// allowed, nothing else after the value).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first problem; never panics,
    /// regardless of input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err(JsonErrorKind::TrailingData));
        }
        Ok(v)
    }

    /// Appends the compact serialization to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object member lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Sets (replacing) or appends an object member. Returns `false`
    /// — and leaves `self` untouched — when this is not an object.
    pub fn set(&mut self, key: &str, value: Json) -> bool {
        match self {
            Json::Obj(members) => {
                match members.iter_mut().find(|(k, _)| k == key) {
                    Some((_, slot)) => *slot = value,
                    None => members.push((key.to_string(), value)),
                }
                true
            }
            _ => false,
        }
    }

    /// The string payload, when this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a [`Json::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer: `Some` only
    /// for numbers that are whole, in-range and loss-free as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        // 2^53: beyond this f64 cannot represent every integer exactly.
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// Encodes any `u64` losslessly: values an `f64` can hold exactly
    /// (≤ 2^53) become a plain [`Json::Num`]; anything larger becomes a
    /// decimal [`Json::Str`]. [`Json::as_u64_lossless`] reverses both
    /// encodings. This is how the result store persists full-range
    /// counters (e.g. the `u64::MAX` empty-histogram min sentinel)
    /// through a codec whose only number type is `f64`.
    pub fn from_u64_lossless(n: u64) -> Json {
        if n <= 9_007_199_254_740_992 {
            Json::Num(n as f64)
        } else {
            Json::Str(n.to_string())
        }
    }

    /// Decodes either [`Json::from_u64_lossless`] encoding: a whole
    /// in-range number (per [`Json::as_u64`]) or an all-digit decimal
    /// string. Signs, blanks and non-canonical strings return `None`.
    pub fn as_u64_lossless(&self) -> Option<u64> {
        match self {
            Json::Num(_) => self.as_u64(),
            Json::Str(s) => {
                if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
                    return None;
                }
                s.parse().ok()
            }
            _ => None,
        }
    }

    /// The boolean payload, when this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, when this is a [`Json::Arr`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, when this is a [`Json::Obj`].
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Serializes compactly (no insignificant whitespace). Object member
/// order is preserved; non-finite numbers render as `null`; the output
/// always re-parses to an equal value. `to_string()` comes for free.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Renders a number the way the workspace's hand-rolled emitters do:
/// whole in-range values as integers, everything else via Rust's
/// shortest-round-trip float formatting, non-finite as `null`.
fn write_num(n: f64, out: &mut String) {
    use fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, kind: JsonErrorKind) -> JsonError {
        JsonError {
            kind,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => Err(self.err(JsonErrorKind::UnexpectedChar(c as char))),
            None => Err(self.err(JsonErrorKind::UnexpectedEof)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else if self.bytes.len() - self.pos < word.len() {
            Err(self.err(JsonErrorKind::UnexpectedEof))
        } else {
            Err(self.err(JsonErrorKind::UnexpectedChar(self.bytes[self.pos] as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(JsonErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.err(JsonErrorKind::UnexpectedEof)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(JsonErrorKind::UnexpectedChar(c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                Some(c) => return Err(self.err(JsonErrorKind::UnexpectedChar(c as char))),
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    kind: JsonErrorKind::DuplicateKey(key),
                    offset: key_at,
                });
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                Some(c) => return Err(self.err(JsonErrorKind::UnexpectedChar(c as char))),
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                Some(_) => return Err(self.err(JsonErrorKind::BadUnicode)),
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
            };
            v = (v << 4) | u16::from(d);
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{8}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{c}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let code = if (0xD800..=0xDBFF).contains(&hi) {
                                // A high surrogate must pair with \uDC00..DFFF.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                } else {
                                    return Err(self.err(JsonErrorKind::BadUnicode));
                                }
                                if self.peek() == Some(b'u') {
                                    self.pos += 1;
                                } else {
                                    return Err(self.err(JsonErrorKind::BadUnicode));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(self.err(JsonErrorKind::BadUnicode));
                                }
                                0x10000
                                    + ((u32::from(hi) - 0xD800) << 10)
                                    + (u32::from(lo) - 0xDC00)
                            } else if (0xDC00..=0xDFFF).contains(&hi) {
                                return Err(self.err(JsonErrorKind::BadUnicode));
                            } else {
                                u32::from(hi)
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err(JsonErrorKind::BadUnicode)),
                            }
                        }
                        Some(_) => return Err(self.err(JsonErrorKind::BadEscape)),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err(JsonErrorKind::ControlInString)),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so always valid).
                    let rest = match std::str::from_utf8(&self.bytes[self.pos..]) {
                        Ok(s) => s,
                        Err(_) => return Err(self.err(JsonErrorKind::BadUnicode)),
                    };
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err(JsonErrorKind::UnexpectedEof));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            Some(_) => return Err(self.err(JsonErrorKind::BadNumber)),
            None => return Err(self.err(JsonErrorKind::UnexpectedEof)),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(JsonErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(JsonErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(t) => t,
            Err(_) => return Err(self.err(JsonErrorKind::BadNumber)),
        };
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => Err(self.err(JsonErrorKind::BadNumber)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Json {
        Json::parse(s).expect(s)
    }

    fn fails(s: &str) -> JsonErrorKind {
        Json::parse(s).expect_err(s).kind
    }

    #[test]
    fn u64_lossless_round_trips_the_full_range() {
        for v in [
            0u64,
            1,
            9_007_199_254_740_992, // 2^53 — last exactly-held Num
            9_007_199_254_740_993, // 2^53 + 1 — first Str fallback
            u64::MAX - 1,
            u64::MAX,
        ] {
            let j = Json::from_u64_lossless(v);
            assert_eq!(j.as_u64_lossless(), Some(v), "value {v}");
            // Survives a serialize → parse cycle too.
            let reparsed = Json::parse(&j.to_string()).expect("well-formed");
            assert_eq!(reparsed.as_u64_lossless(), Some(v), "reparsed {v}");
        }
        assert!(matches!(Json::from_u64_lossless(u64::MAX), Json::Str(_)));
        assert!(matches!(Json::from_u64_lossless(42), Json::Num(_)));
        // Non-canonical strings are rejected.
        assert_eq!(Json::str("").as_u64_lossless(), None);
        assert_eq!(Json::str("+5").as_u64_lossless(), None);
        assert_eq!(Json::str("12a").as_u64_lossless(), None);
        assert_eq!(Json::Num(1.5).as_u64_lossless(), None);
        assert_eq!(Json::Null.as_u64_lossless(), None);
    }

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null"), Json::Null);
        assert_eq!(parse(" true "), Json::Bool(true));
        assert_eq!(parse("false"), Json::Bool(false));
        assert_eq!(parse("0"), Json::Num(0.0));
        assert_eq!(parse("-12.5e2"), Json::Num(-1250.0));
        assert_eq!(parse("1e3"), Json::Num(1000.0));
        assert_eq!(parse("\"a\\nb\""), Json::Str("a\nb".into()));
    }

    #[test]
    fn containers_parse_in_order() {
        let v = parse(r#"{"b": [1, 2, {"x": null}], "a": "y"}"#);
        let Json::Obj(members) = &v else {
            panic!("object")
        };
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(
            v.get("b").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""A""#), Json::Str("A".into()));
        assert_eq!(parse(r#""😀""#), Json::Str("😀".into()));
        assert_eq!(fails(r#""\ud83d""#), JsonErrorKind::BadUnicode);
        assert_eq!(fails(r#""\ude00""#), JsonErrorKind::BadUnicode);
        assert_eq!(fails(r#""\uzzzz""#), JsonErrorKind::BadUnicode);
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        assert_eq!(fails(""), JsonErrorKind::UnexpectedEof);
        assert_eq!(fails("{"), JsonErrorKind::UnexpectedEof);
        assert_eq!(fails("nul"), JsonErrorKind::UnexpectedEof);
        assert_eq!(fails("nulL"), JsonErrorKind::UnexpectedChar('n'));
        assert_eq!(fails("01"), JsonErrorKind::TrailingData);
        assert_eq!(fails("1 2"), JsonErrorKind::TrailingData);
        assert_eq!(fails("[1,]"), JsonErrorKind::UnexpectedChar(']'));
        assert_eq!(fails("{'a': 1}"), JsonErrorKind::UnexpectedChar('\''));
        assert_eq!(fails("1."), JsonErrorKind::BadNumber);
        assert_eq!(fails("-"), JsonErrorKind::UnexpectedEof);
        assert_eq!(fails("1e"), JsonErrorKind::BadNumber);
        assert_eq!(fails("\"\u{1}\""), JsonErrorKind::ControlInString);
        assert_eq!(
            fails(r#"{"a": 1, "a": 2}"#),
            JsonErrorKind::DuplicateKey("a".into())
        );
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(fails(&deep), JsonErrorKind::TooDeep);
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn serializer_round_trips() {
        let v = Json::obj([
            ("s", Json::str("a\"b\\c\n\u{1}")),
            ("n", Json::Num(0.1)),
            ("i", Json::from(42u64)),
            ("neg", Json::Num(-7.0)),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("o", Json::Obj(vec![])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).expect("round trip"), v);
        // Stable: serializing the reparse gives the same bytes.
        assert_eq!(parse(&text).to_string(), text);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
        assert_eq!(Json::from(u64::from(u32::MAX)).to_string(), "4294967295");
    }

    #[test]
    fn as_u64_guards_range_and_fraction() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e15).as_u64(), Some(1_000_000_000_000_000));
        assert_eq!(Json::Num(1e16).as_u64(), None, "beyond 2^53 exactness");
    }

    #[test]
    fn set_replaces_appends_and_refuses_non_objects() {
        let mut v = Json::obj([("a", Json::from(1u64))]);
        assert!(v.set("a", Json::from(2u64)));
        assert!(v.set("b", Json::str("x")));
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.as_object().map(<[_]>::len), Some(2));
        let mut not_obj = Json::from(true);
        assert!(!not_obj.set("a", Json::Null));
        assert_eq!(not_obj, Json::Bool(true));
    }
}
