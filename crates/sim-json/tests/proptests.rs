//! Property tests for the JSON codec, seeded by `sim-rng` (the
//! workspace's deterministic PRNG): round-trip identity over generated
//! documents, serialization stability, and a malformed-input fuzz loop
//! asserting the parser returns typed errors and never panics.

use sim_json::{Json, JsonError};
use sim_rng::SmallRng;

/// Generates an arbitrary JSON value. Depth-bounded so containers
/// terminate; leaves exercise every scalar shape the serializer emits.
fn gen_value(rng: &mut SmallRng, depth: usize) -> Json {
    let pick = if depth >= 4 {
        rng.gen_range(0..4u32) // leaves only
    } else {
        rng.gen_range(0..6u32)
    };
    match pick {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => gen_number(rng),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.gen_range(0..5usize);
            Json::Arr((0..n).map(|_| gen_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..5usize);
            let mut members: Vec<(String, Json)> = Vec::new();
            for i in 0..n {
                // Unique keys (the parser rejects duplicates by design).
                let key = format!("{}-{i}", gen_string(rng));
                members.push((key, gen_value(rng, depth + 1)));
            }
            Json::Obj(members)
        }
    }
}

/// Numbers across the shapes that matter: small ints, large exact ints,
/// negatives, dyadic fractions (exactly representable), and arbitrary
/// finite doubles from the RNG stream.
fn gen_number(rng: &mut SmallRng) -> Json {
    match rng.gen_range(0..5u32) {
        0 => Json::Num(rng.gen_range(0..100u64) as f64),
        1 => Json::Num(-(rng.gen_range(0..1_000_000u64) as f64)),
        2 => Json::Num(rng.gen_range(0..(1u64 << 53)) as f64),
        3 => Json::Num(rng.gen_range(0..1024u64) as f64 / 64.0),
        _ => {
            let x = rng.gen_range(-1.0e12..=1.0e12);
            Json::Num(if x.is_finite() { x } else { 0.0 })
        }
    }
}

fn gen_string(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(0..12usize);
    (0..n)
        .map(|_| match rng.gen_range(0..6u32) {
            0 => '"',
            1 => '\\',
            2 => '\n',
            3 => char::from_u32(rng.gen_range(0..0x20u32)).unwrap_or(' '),
            4 => ['é', '😀', 'Ж', '中'][rng.gen_range(0..4usize)],
            _ => char::from(b'a' + (rng.gen_range(0..26u32) as u8)),
        })
        .collect()
}

#[test]
fn parse_serialize_round_trips_generated_values() {
    let mut rng = SmallRng::seed_from_u64(0x5e1f_900d);
    for case in 0..2_000 {
        let v = gen_value(&mut rng, 0);
        let text = v.to_string();
        let back =
            Json::parse(&text).unwrap_or_else(|e| panic!("case {case}: {e} while parsing {text}"));
        assert_eq!(back, v, "case {case}: round trip diverged on {text}");
        // Serialization is a fixed point: one more cycle is byte-stable.
        assert_eq!(back.to_string(), text, "case {case}");
    }
}

#[test]
fn workspace_emitter_shapes_round_trip() {
    // The shapes the hand-rolled emitters produce: nested objects with
    // histogram arrays, hex-string keys, nulls for empty percentiles.
    let doc = r#"{"jobs": 2, "wall_ns": 123456789, "points": [{"label": "libq [4/4x/100%reg]", "key": "00ff00ff00ff00ff", "edp": 0.00012345, "p50": null, "buckets": [[40, 2], [60, 1]]}]}"#;
    let v = Json::parse(doc).expect("emitter-shaped doc parses");
    let again = Json::parse(&v.to_string()).expect("reparse");
    assert_eq!(again, v);
}

/// Mutation fuzz: take valid serialized documents, corrupt them with
/// byte-level edits, and require the parser to return (Ok or a typed
/// Err) without panicking. `should_panic` can't express "never panics",
/// so the loop simply runs — any panic fails the test.
#[test]
fn malformed_input_fuzz_yields_typed_errors_not_panics() {
    let mut rng = SmallRng::seed_from_u64(0xbad_f00d);
    let mut errors = 0usize;
    for _ in 0..2_000 {
        let v = gen_value(&mut rng, 0);
        let mut bytes = v.to_string().into_bytes();
        let edits = rng.gen_range(1..4usize);
        for _ in 0..edits {
            if bytes.is_empty() {
                break;
            }
            let at = rng.gen_range(0..bytes.len());
            match rng.gen_range(0..3u32) {
                0 => {
                    bytes.remove(at);
                }
                1 => {
                    bytes[at] = rng.gen_range(0..128u32) as u8;
                }
                _ => {
                    let b = rng.gen_range(0..128u32) as u8;
                    bytes.insert(at, b);
                }
            }
        }
        // Mutations can break UTF-8; the parser takes &str, so lossy-fix
        // first (the protocol layer reads lines as Strings the same way).
        let text = String::from_utf8_lossy(&bytes);
        match Json::parse(&text) {
            Ok(_) => {}
            Err(JsonError { kind, offset }) => {
                errors += 1;
                assert!(
                    offset <= text.len(),
                    "error offset {offset} beyond input len {} ({kind:?})",
                    text.len()
                );
            }
        }
    }
    assert!(errors > 200, "fuzz too tame: only {errors} rejects");
}

/// Pure-noise fuzz: random ASCII soup must never panic either.
#[test]
fn random_noise_never_panics() {
    let mut rng = SmallRng::seed_from_u64(2015);
    for _ in 0..2_000 {
        let n = rng.gen_range(0..64usize);
        let text: String = (0..n)
            .map(|_| char::from(rng.gen_range(0x20..0x7fu32) as u8))
            .collect();
        let _ = Json::parse(&text);
    }
}
