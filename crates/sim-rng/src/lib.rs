//! # sim-rng
//!
//! A zero-dependency, deterministic pseudo-random number generator for the
//! simulator. Every experiment in this workspace must be exactly
//! reproducible from a `u64` seed — across runs, platforms, and thread
//! counts — so we pin the algorithm (xoshiro256++ seeded via SplitMix64)
//! here instead of depending on an external crate whose stream could
//! change between versions.
//!
//! The API mirrors the small subset of `rand` the workspace used:
//!
//! ```
//! use sim_rng::SmallRng;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! let x = rng.gen_f64();             // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&x));
//! let c = rng.gen_range(0..128u32);  // uniform integer
//! assert!(c < 128);
//! let again = SmallRng::seed_from_u64(7).gen_f64();
//! assert_eq!(x, again);              // fully deterministic
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// Not cryptographically secure — it drives simulation workloads, where
/// statistical quality and bit-for-bit reproducibility are what matter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

/// One step of SplitMix64 — used to expand a 64-bit seed into the
/// 256-bit xoshiro state (the initialization recommended by the
/// xoshiro authors).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// Builds a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform sample from a range; see [`RangeSample`] for supported
    /// range types.
    pub fn gen_range<R: RangeSample>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform integer in `[0, n)` via 128-bit widening multiply
    /// (avoids modulo bias to within 2^-64, plenty for simulation).
    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait RangeSample {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl RangeSample for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range!(u32, u64, usize);

impl RangeSample for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl RangeSample for RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        a + rng.gen_f64() * (b - a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = SmallRng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn known_answer_pins_the_stream() {
        // Guards against accidental algorithm changes: the whole workspace
        // depends on this exact stream for reproducible experiments.
        let mut r = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180
            ]
        );
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn int_ranges_cover_and_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = r.gen_range(0..8u32);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
        for _ in 0..1_000 {
            let v = r.gen_range(5..7usize);
            assert!((5..7).contains(&v));
        }
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.3).abs() < 0.01, "p=0.3 observed {f}");
        assert!(!SmallRng::seed_from_u64(4).gen_bool(0.0));
        assert!(SmallRng::seed_from_u64(4).gen_bool(1.0));
    }

    #[test]
    fn f64_range_sampling() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = r.gen_range(2.0..4.0);
            assert!((2.0..4.0).contains(&v));
            let w = r.gen_range(0.0..=1.5);
            assert!((0.0..=1.5).contains(&w));
        }
        // Degenerate inclusive range is allowed.
        assert_eq!(r.gen_range(3.0..=3.0), 3.0);
    }
}
