//! `trace_dump` — write a synthetic MSC-format trace to stdout or a file.
//!
//! ```text
//! cargo run -p trace-gen --bin trace_dump --release -- libq 100000 42 > libq.trc
//! ```
//!
//! Arguments: `<workload> [records=100000] [seed=2015]`. The output is the
//! USIMM text format (`<gap> <R|W> <hex-addr>`), so it can drive other
//! DRAM simulators for cross-validation.

use cpu_model::write_trace;
use std::io::{self, BufWriter, Write};
use std::process::ExitCode;
use trace_gen::{all_workloads, workload, TraceGenerator};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!("usage: trace_dump <workload> [records] [seed]");
        eprintln!(
            "workloads: {}",
            all_workloads()
                .iter()
                .map(|w| w.name)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    };
    let Some(profile) = workload(name) else {
        eprintln!("unknown workload {name:?}");
        return ExitCode::FAILURE;
    };
    let records: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(100_000);
    let seed: u64 = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(2015);

    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    let trace = TraceGenerator::new(profile, seed, 0).take(records);
    if let Err(e) = write_trace(&mut out, trace).and_then(|()| out.flush()) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
