//! The trace generator: profiles → streams of `TraceRecord`s.

use crate::profile::{WorkloadProfile, ROW_BYTES};
use crate::zipf::Zipf;
use cpu_model::TraceRecord;
use dram_device::{PhysAddr, ReqKind};
use sim_rng::SmallRng;

/// Cache lines per generated row frame.
const LINES_PER_ROW: u32 = (ROW_BYTES / 64) as u32;

/// An odd multiplier; multiplying by it modulo a power of two is a
/// bijection, used to scatter Zipf popularity ranks over row frames so the
/// hot set is not address-contiguous.
const SCATTER: u64 = 0x9E37_79B1;

/// Streams [`TraceRecord`]s for one workload profile.
///
/// Deterministic: the same `(profile, seed, base)` triple produces the same
/// infinite stream. Use [`Iterator::take`] to bound the run length.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: SmallRng,
    zipf: Zipf,
    /// Base byte offset added to every generated address (gives each core
    /// of a multi-programmed mix a private address-space slice).
    base: u64,
    row: u64,
    col: u32,
}

impl TraceGenerator {
    /// Generator for `profile`, seeded with `seed`, offsetting all
    /// addresses by `base` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not row-aligned.
    pub fn new(profile: &WorkloadProfile, seed: u64, base: u64) -> Self {
        assert_eq!(base % ROW_BYTES, 0, "base must be row-aligned");
        let mut rng = SmallRng::seed_from_u64(seed ^ hash_name(profile.name));
        let zipf = Zipf::new(profile.footprint_rows, profile.zipf_theta);
        let row = zipf.sample(&mut rng);
        let col = rng.gen_range(0..LINES_PER_ROW);
        TraceGenerator {
            profile: *profile,
            rng,
            zipf,
            base,
            row,
            col,
        }
    }

    /// The workload profile being generated.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Scatters a popularity rank onto a row-frame index (bijective because
    /// footprints are powers of two and the multiplier is odd).
    fn scatter(&self, rank: u64) -> u64 {
        (rank.wrapping_mul(SCATTER)) & (self.profile.footprint_rows - 1)
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    })
}

impl Iterator for TraceGenerator {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        let p = self.profile;
        // Row-buffer locality: continue sequentially in the current row, or
        // jump to a Zipf-popular row.
        let stay = self.rng.gen_bool(p.row_locality) && self.col + 1 < LINES_PER_ROW;
        if stay {
            self.col += 1;
        } else {
            let rank = self.zipf.sample(&mut self.rng);
            self.row = self.scatter(rank);
            self.col = self.rng.gen_range(0..LINES_PER_ROW);
        }
        let addr = self.base + self.row * ROW_BYTES + self.col as u64 * 64;
        let kind = if self.rng.gen_bool(p.read_fraction) {
            ReqKind::Read
        } else {
            ReqKind::Write
        };
        // Gap: uniform in [0, 2·mean], preserving the MPKI in expectation.
        let mean = p.mean_gap();
        let gap = self.rng.gen_range(0.0..=2.0 * mean + f64::MIN_POSITIVE) as u32;
        Some(TraceRecord::new(gap, kind, PhysAddr(addr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::workload;

    fn take(name: &str, n: usize) -> Vec<TraceRecord> {
        TraceGenerator::new(workload(name).unwrap(), 1, 0)
            .take(n)
            .collect()
    }

    #[test]
    fn deterministic_streams() {
        assert_eq!(take("comm1", 500), take("comm1", 500));
        assert_ne!(take("comm1", 500), take("comm3", 500));
    }

    #[test]
    fn read_fraction_approximates_profile() {
        let recs = take("libq", 20_000);
        let reads = recs.iter().filter(|r| r.kind == ReqKind::Read).count();
        let f = reads as f64 / recs.len() as f64;
        assert!((f - 0.95).abs() < 0.01, "read fraction {f}");
    }

    #[test]
    fn mpki_approximates_profile() {
        let recs = take("comm1", 50_000);
        let instrs: u64 = recs.iter().map(|r| r.instructions()).sum();
        let mpki = recs.len() as f64 * 1000.0 / instrs as f64;
        assert!((mpki - 18.0).abs() < 1.0, "mpki {mpki}");
    }

    #[test]
    fn row_locality_shows_in_stream() {
        let high = take("libq", 10_000);
        let low = take("tigr", 10_000);
        let same_row = |recs: &[TraceRecord]| {
            recs.windows(2)
                .filter(|w| w[0].addr.0 / ROW_BYTES == w[1].addr.0 / ROW_BYTES)
                .count() as f64
                / (recs.len() - 1) as f64
        };
        assert!(same_row(&high) > 0.7, "libq locality {}", same_row(&high));
        assert!(same_row(&low) < 0.35, "tigr locality {}", same_row(&low));
    }

    #[test]
    fn footprint_is_respected() {
        let recs = take("black", 50_000);
        let max_row = recs.iter().map(|r| r.addr.0 / ROW_BYTES).max().unwrap();
        assert!(max_row < workload("black").unwrap().footprint_rows);
    }

    #[test]
    fn base_offset_shifts_addresses() {
        let base = 1u64 << 32;
        let recs = TraceGenerator::new(workload("black").unwrap(), 1, base)
            .take(100)
            .collect::<Vec<_>>();
        assert!(recs.iter().all(|r| r.addr.0 >= base));
    }

    #[test]
    fn comm2_hot_rows_dominate() {
        // Paper Sec. 6.1: 88 % of comm2 requests hit its hottest 10 % of
        // rows (with 10 % pseudo-profile allocation). Our profile should be
        // in the same regime.
        let recs = take("comm2", 100_000);
        let mut counts = std::collections::HashMap::new();
        for r in &recs {
            *counts.entry(r.addr.0 / ROW_BYTES).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = (workload("comm2").unwrap().footprint_rows as usize) / 10;
        let hot: u64 = freqs.iter().take(top10).sum();
        let frac = hot as f64 / recs.len() as f64;
        assert!(frac > 0.80, "comm2 top-10% row mass {frac}");
    }
}
