//! # trace-gen
//!
//! Deterministic synthetic workload generators standing in for the MSC
//! (Memory Scheduling Championship) trace files the paper evaluates with.
//!
//! The original traces are not redistributable, so each MSC workload is
//! replaced by a parametric profile spanning the behavioural axes the
//! paper's conclusions depend on: memory intensity (MPKI), read/write mix,
//! row-buffer locality, footprint, and hot-row skew (a Zipf exponent —
//! e.g. the paper notes 88 % of `comm2`'s requests land on its 10 % hottest
//! rows, which our `comm2` profile reproduces via a steep Zipf).
//! DESIGN.md documents this substitution.
//!
//! Everything is seeded and reproducible: the same profile + seed yields a
//! bit-identical trace stream.
//!
//! ## Example
//!
//! ```
//! use trace_gen::{workload, TraceGenerator};
//!
//! let profile = workload("libq").expect("libq is an MSC workload");
//! let trace: Vec<_> = TraceGenerator::new(profile, 42, 0).take(1000).collect();
//! assert_eq!(trace.len(), 1000);
//! // High row locality: most consecutive accesses share a DRAM row.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod mixes;
mod profile;
mod profiler;
mod zipf;

pub use generator::TraceGenerator;
pub use mixes::{multi_programmed_mixes, multi_threaded_group, Mix};
pub use profile::{
    all_workloads, single_core_workloads, workload, Suite, WorkloadProfile, ROW_BYTES,
};
pub use profiler::{hot_rows, row_histogram};
pub use zipf::Zipf;
