//! Multi-programmed and multi-threaded workload groups (paper Sec. 5.2).

use crate::profile::{Suite, WorkloadProfile};
use sim_rng::SmallRng;

/// A four-core workload group: one profile per core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    /// Display name (e.g. `mix03` or `MT-fluid`).
    pub name: &'static str,
    /// The four per-core profiles.
    pub cores: [&'static WorkloadProfile; 4],
    /// Multi-threaded workloads share one address space (all threads walk
    /// the same footprint); multi-programmed mixes give each program a
    /// private slice.
    pub shared_address_space: bool,
}

/// The paper's 14 multi-programmed mixes: each is built by picking one
/// single-threaded workload from each of the four suites at random
/// (deterministically seeded).
pub fn multi_programmed_mixes(seed: u64) -> Vec<Mix> {
    const NAMES: [&str; 14] = [
        "mix01", "mix02", "mix03", "mix04", "mix05", "mix06", "mix07", "mix08", "mix09", "mix10",
        "mix11", "mix12", "mix13", "mix14",
    ];
    let mut rng = SmallRng::seed_from_u64(seed);
    let suites = [
        Suite::Commercial,
        Suite::Spec,
        Suite::Parsec,
        Suite::Biobench,
    ];
    NAMES
        .iter()
        .map(|name| {
            let mut cores = [WorkloadProfile::of_suite(Suite::Spec)[0]; 4];
            for (slot, suite) in suites.iter().enumerate() {
                let pool = WorkloadProfile::of_suite(*suite);
                cores[slot] = pool[rng.gen_range(0..pool.len())];
            }
            Mix {
                name,
                cores,
                shared_address_space: false,
            }
        })
        .collect()
}

/// The two multi-threaded workloads: all four cores run the same
/// `MT-*` profile (with distinct per-thread seeds supplied by the caller).
pub fn multi_threaded_group() -> Vec<Mix> {
    let Some(mt_fluid) = crate::profile::workload("MT-fluid") else {
        unreachable!("MT-fluid is a built-in profile")
    };
    let Some(mt_canneal) = crate::profile::workload("MT-canneal") else {
        unreachable!("MT-canneal is a built-in profile")
    };
    vec![
        Mix {
            name: "MT-fluid",
            cores: [mt_fluid; 4],
            shared_address_space: true,
        },
        Mix {
            name: "MT-canneal",
            cores: [mt_canneal; 4],
            shared_address_space: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_mixes_one_per_suite() {
        let mixes = multi_programmed_mixes(2015);
        assert_eq!(mixes.len(), 14);
        for m in &mixes {
            assert_eq!(m.cores[0].suite, Suite::Commercial);
            assert_eq!(m.cores[1].suite, Suite::Spec);
            assert_eq!(m.cores[2].suite, Suite::Parsec);
            assert_eq!(m.cores[3].suite, Suite::Biobench);
            assert!(m.cores.iter().all(|c| !c.multi_threaded));
        }
    }

    #[test]
    fn mixes_are_deterministic_and_seed_sensitive() {
        assert_eq!(multi_programmed_mixes(1), multi_programmed_mixes(1));
        let a = multi_programmed_mixes(1);
        let b = multi_programmed_mixes(2);
        assert!(a.iter().zip(&b).any(|(x, y)| x.cores != y.cores));
    }

    #[test]
    fn sixteen_multi_core_workloads_total() {
        assert_eq!(
            multi_programmed_mixes(2015).len() + multi_threaded_group().len(),
            16
        );
    }
}
