//! Per-workload behavioural profiles.

/// Bytes per DRAM row frame in the generated address space (matches the
/// paper's 128 cache lines × 64 B geometry).
pub const ROW_BYTES: u64 = 8192;

/// MSC benchmark suite a workload belongs to (paper Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Server/transaction traces (`comm1..comm5`).
    Commercial,
    /// SPEC CPU2006 (`leslie`, `libq`).
    Spec,
    /// PARSEC (`black`, `face`, …, plus the multi-threaded pair).
    Parsec,
    /// Bioinformatics (`mummer`, `tigr`).
    Biobench,
}

/// A synthetic stand-in for one MSC workload.
///
/// Fields are the knobs the generator uses; values are chosen per workload
/// to span the same behavioural axes as the original trace (see crate
/// docs for the substitution rationale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Workload name as used in the paper's figures.
    pub name: &'static str,
    /// Suite the workload belongs to.
    pub suite: Suite,
    /// Memory operations per 1000 instructions.
    pub mpki: f64,
    /// Fraction of memory operations that are reads.
    pub read_fraction: f64,
    /// Probability that the next access continues in the current row.
    pub row_locality: f64,
    /// Distinct row frames touched (power of two).
    pub footprint_rows: u64,
    /// Zipf exponent of row popularity (0 = uniform; larger = hotter).
    pub zipf_theta: f64,
    /// True for the multi-threaded PARSEC pair (`MT-*`), which only appear
    /// in multi-core runs.
    pub multi_threaded: bool,
}

macro_rules! profiles {
    ($($name:literal, $suite:ident, $mpki:literal, $rf:literal, $rl:literal,
       $rows:literal, $theta:literal, $mt:literal;)*) => {
        /// Every workload of paper Table 5.
        pub fn all_workloads() -> &'static [WorkloadProfile] {
            const ALL: &[WorkloadProfile] = &[
                $(WorkloadProfile {
                    name: $name,
                    suite: Suite::$suite,
                    mpki: $mpki,
                    read_fraction: $rf,
                    row_locality: $rl,
                    footprint_rows: $rows,
                    zipf_theta: $theta,
                    multi_threaded: $mt,
                },)*
            ];
            ALL
        }
    };
}

profiles! {
    // name      suite       mpki  read  rowloc rows   zipf  MT
    "comm1",     Commercial, 18.0, 0.62, 0.55,  16384, 0.90, false;
    "comm2",     Commercial, 22.0, 0.60, 0.50,   8192, 1.25, false;
    "comm3",     Commercial, 12.0, 0.65, 0.45,  16384, 0.80, false;
    "comm4",     Commercial,  8.0, 0.58, 0.40,  32768, 0.70, false;
    "comm5",     Commercial, 10.0, 0.63, 0.50,  16384, 0.80, false;
    "leslie",    Spec,       30.0, 0.75, 0.75,  16384, 0.50, false;
    "libq",      Spec,       25.0, 0.95, 0.85,   8192, 0.40, false;
    "black",     Parsec,      3.0, 0.70, 0.60,   4096, 0.60, false;
    "face",      Parsec,      6.0, 0.68, 0.65,   8192, 0.60, false;
    "ferret",    Parsec,      9.0, 0.66, 0.55,   8192, 0.70, false;
    "fluid",     Parsec,      7.0, 0.65, 0.60,  16384, 0.60, false;
    "freq",      Parsec,      8.0, 0.64, 0.55,   8192, 0.70, false;
    "stream",    Parsec,     28.0, 0.55, 0.80,  32768, 0.30, false;
    "swapt",     Parsec,      7.0, 0.67, 0.55,   8192, 0.60, false;
    "MT-canneal",Parsec,     15.0, 0.70, 0.35,  32768, 0.70, true;
    "MT-fluid",  Parsec,      7.0, 0.65, 0.60,  16384, 0.60, true;
    "mummer",    Biobench,   24.0, 0.80, 0.30,  32768, 0.60, false;
    "tigr",      Biobench,   26.0, 0.78, 0.25,  32768, 0.60, false;
}

/// Looks up a workload by name.
pub fn workload(name: &str) -> Option<&'static WorkloadProfile> {
    all_workloads().iter().find(|w| w.name == name)
}

/// The 16 single-threaded workloads used in the paper's single-core runs
/// (Table 5 minus the `MT-*` pair).
pub fn single_core_workloads() -> Vec<&'static WorkloadProfile> {
    all_workloads()
        .iter()
        .filter(|w| !w.multi_threaded)
        .collect()
}

impl WorkloadProfile {
    /// Mean number of non-memory instructions between memory operations.
    pub fn mean_gap(&self) -> f64 {
        (1000.0 / self.mpki - 1.0).max(0.0)
    }

    /// Workloads of a given suite.
    pub fn of_suite(suite: Suite) -> Vec<&'static WorkloadProfile> {
        all_workloads()
            .iter()
            .filter(|w| w.suite == suite && !w.multi_threaded)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_single_core_workloads() {
        assert_eq!(single_core_workloads().len(), 16);
    }

    #[test]
    fn all_footprints_are_powers_of_two() {
        for w in all_workloads() {
            assert!(
                w.footprint_rows.is_power_of_two(),
                "{} footprint must be a power of two for the hot-row permutation",
                w.name
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(workload("libq").unwrap().suite, Suite::Spec);
        assert!(workload("nonexistent").is_none());
        assert!(workload("MT-fluid").unwrap().multi_threaded);
    }

    #[test]
    fn every_suite_is_populated() {
        for s in [
            Suite::Commercial,
            Suite::Spec,
            Suite::Parsec,
            Suite::Biobench,
        ] {
            assert!(!WorkloadProfile::of_suite(s).is_empty());
        }
    }

    #[test]
    fn mean_gap_tracks_mpki() {
        let libq = workload("libq").unwrap();
        assert!((libq.mean_gap() - 39.0).abs() < 1e-9);
        let black = workload("black").unwrap();
        assert!(black.mean_gap() > libq.mean_gap());
    }

    #[test]
    fn probabilities_are_valid() {
        for w in all_workloads() {
            assert!((0.0..=1.0).contains(&w.read_fraction), "{}", w.name);
            assert!((0.0..=1.0).contains(&w.row_locality), "{}", w.name);
            assert!(w.mpki > 0.0);
        }
    }
}
