//! Offline hot-row profiling (feeds pseudo profile-based page allocation).
//!
//! The paper assumes the OS learns which pages are hot via compiler- or
//! hardware-based profiling; here we profile the synthetic trace itself,
//! which plays the same role: a ranked list of row frames by access count.

use crate::generator::TraceGenerator;
use crate::profile::{WorkloadProfile, ROW_BYTES};
use std::collections::HashMap;

/// Access counts per row frame over a sample of `sample` records.
pub fn row_histogram(profile: &WorkloadProfile, seed: u64, sample: usize) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for rec in TraceGenerator::new(profile, seed, 0).take(sample) {
        *counts.entry(rec.addr.0 / ROW_BYTES).or_insert(0) += 1;
    }
    counts
}

/// Row frames ranked by descending access frequency (ties broken by row id
/// for determinism), truncated to `top_n`.
pub fn hot_rows(profile: &WorkloadProfile, seed: u64, sample: usize, top_n: usize) -> Vec<u64> {
    let counts = row_histogram(profile, seed, sample);
    let mut rows: Vec<(u64, u64)> = counts.into_iter().collect();
    rows.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.into_iter().take(top_n).map(|(row, _)| row).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::workload;

    #[test]
    fn hot_rows_cover_most_accesses_for_skewed_workloads() {
        let w = workload("comm2").unwrap();
        let hot = hot_rows(w, 7, 50_000, (w.footprint_rows / 10) as usize);
        let counts = row_histogram(w, 7, 50_000);
        let total: u64 = counts.values().sum();
        let hot_mass: u64 = hot.iter().map(|r| counts[r]).sum();
        assert!(hot_mass as f64 / total as f64 > 0.8);
    }

    #[test]
    fn ranking_is_deterministic() {
        let w = workload("comm1").unwrap();
        assert_eq!(hot_rows(w, 3, 10_000, 64), hot_rows(w, 3, 10_000, 64));
    }

    #[test]
    fn top_n_truncates() {
        let w = workload("black").unwrap();
        assert_eq!(hot_rows(w, 3, 5_000, 10).len(), 10);
    }
}
