//! A deterministic Zipf sampler over `N` ranks.

use sim_rng::SmallRng;

/// Zipf distribution over ranks `0..n` with exponent `theta`:
/// `P(rank = r) ∝ 1 / (r + 1)^theta`. `theta = 0` is uniform.
///
/// Sampling is inverse-CDF over a precomputed cumulative table
/// (`O(log n)` per draw, `O(n)` memory — footprints are ≤ 128 Ki rows).
///
/// ```
/// use sim_rng::SmallRng;
/// use trace_gen::Zipf;
///
/// let zipf = Zipf::new(1024, 1.0);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1024);
/// assert!(zipf.pmf(0) > zipf.pmf(512)); // low ranks are hotter
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(theta >= 0.0, "theta must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is only a single rank.
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank.
    pub fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen_f64();
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Probability mass of rank `r` (for tests and analysis).
    pub fn pmf(&self, r: u64) -> f64 {
        let r = r as usize;
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for r in 0..4 {
            assert!((z.pmf(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let z = Zipf::new(1024, 1.25);
        // Top 10% of ranks should carry the large majority of mass.
        let mass: f64 = (0..102).map(|r| z.pmf(r)).sum();
        assert!(mass > 0.75, "top-10% mass {mass}");
    }

    #[test]
    fn samples_follow_cdf() {
        let z = Zipf::new(64, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = vec![0u64; 64];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        // Rank 0 about 1/H(64) ≈ 0.21 of draws; allow generous tolerance.
        let f0 = counts[0] as f64 / 100_000.0;
        assert!((f0 - z.pmf(0)).abs() < 0.01, "{f0} vs {}", z.pmf(0));
        // Monotone non-increasing in expectation: coarse check.
        assert!(counts[0] > counts[32]);
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(128, 0.8);
        let a: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = SmallRng::seed_from_u64(9);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
