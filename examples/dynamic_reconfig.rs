//! Dynamic MCR-mode change in a live system (paper Sec. 4.1/4.4):
//! start in low-latency [4/4x/100%reg], relax to [2/2x] when more
//! capacity is needed, and finally fall back to full-capacity DRAM —
//! all mid-run, with no data movement (Table 2's address-mapping trick).
//!
//! ```text
//! cargo run -p mcr-dram --example dynamic_reconfig --release
//! ```

use mcr_dram::{McrMode, ModeChangePlan, System, SystemConfig};

fn main() {
    let plan = ModeChangePlan::new(4 << 30);
    let cfg = SystemConfig::single_core("leslie", 60_000).with_mode(McrMode::headline());
    let mut sys = System::try_build(&cfg).expect("valid config");

    let mut mode = McrMode::headline();
    println!(
        "phase 1: {mode} — OS sees {} GiB",
        plan.os_view(mode).bytes >> 30
    );
    sys.run_until(250_000);

    let relaxed = mode.relaxed().expect("4x relaxes to 2x");
    assert!(plan.change_is_collision_free(mode, relaxed));
    sys.reconfigure(relaxed);
    mode = relaxed;
    println!(
        "phase 2 @ cycle {}: relaxed to {mode} — OS sees {} GiB, no data copied",
        sys.now(),
        plan.os_view(mode).bytes >> 30
    );
    sys.run_until(500_000);

    let off = mode.relaxed().expect("2x relaxes to off");
    assert!(plan.change_is_collision_free(mode, off));
    sys.reconfigure(off);
    println!(
        "phase 3 @ cycle {}: MCR-mode off — full {} GiB available",
        sys.now(),
        plan.os_view(off).bytes >> 30
    );
    sys.run_until(u64::MAX);

    let r = sys.report();
    println!();
    println!(
        "run finished: {} reads, avg read latency {:.1} mem cycles, {} mem cycles total",
        r.reads_done, r.avg_read_latency, r.total_mem_cycles
    );
    println!("every phase transition was a Table 2 relaxation: collision-free by construction.");
}
