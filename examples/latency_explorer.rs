//! Latency explorer: walk the circuit model from first principles —
//! charge-sharing ΔV, sensing time, restore targets — and print the
//! resulting Table 3 next to the paper's values.
//!
//! ```text
//! cargo run -p mcr-dram --example latency_explorer --release
//! ```

use circuit_model::{
    cell_restore_waveform, sense_waveform, CircuitParams, LeakageModel, PaperTable3, TimingSolver,
};

fn main() {
    let p = CircuitParams::calibrated();
    let s = TimingSolver::new(p);
    let leak = LeakageModel::new(p);

    println!("== Key Observation 1: more clone cells -> larger charge-sharing dV ==");
    for k in [1u32, 2, 4] {
        println!(
            "  K={k}: dV = {:.3} V  (cell {} fF x{k} vs bitline {} fF)",
            p.delta_v_full(k),
            p.c_cell_ff,
            p.c_bit_ff
        );
    }

    println!();
    println!("== Sensing: time for the bitline to reach the accessible voltage ==");
    for k in [1u32, 2, 4] {
        let t = s.t_rcd_ns(k);
        println!(
            "  K={k}: tRCD = {t:.2} ns (paper {:.2} ns)",
            PaperTable3::t_rcd_ns(k)
        );
    }

    println!();
    println!("== Key Observation 2: shorter refresh interval -> less leakage ==");
    for m in [1u32, 2, 4] {
        let interval = 64.0 / m as f64;
        println!(
            "  {m} refreshes/64ms: interval {interval:>4.0} ms, droop {:.3} V, min restore {:.3} V",
            leak.droop_v(interval),
            leak.min_restore_v(interval)
        );
    }

    println!();
    println!("== Early-Precharge: restore may stop at the relaxed target ==");
    for (m, k) in PaperTable3::modes() {
        println!(
            "  {m}/{k}x: target {:.3} V -> tRAS {:.2} ns (paper {:.2} ns)",
            s.restore_target_v(m),
            s.t_ras_ns(m, k),
            PaperTable3::t_ras_ns(m, k)
        );
    }

    println!();
    println!("== Fig. 10 waveform peek (first 12 ns of sensing, K=1 vs K=4) ==");
    for k in [1u32, 4] {
        let w = sense_waveform(&p, k, 12.0, 3.0);
        let line: Vec<String> = w.iter().map(|q| format!("{:.2}V", q.v)).collect();
        println!("  K={k}: {}", line.join(" -> "));
    }
    let w1 = cell_restore_waveform(&p, 1, 40.0, 10.0);
    let w4 = cell_restore_waveform(&p, 4, 40.0, 10.0);
    println!(
        "  restore @40ns: K=1 reaches {:.3} V, K=4 reaches {:.3} V (slower tail)",
        w1.last().unwrap().v,
        w4.last().unwrap().v
    );
}
