//! Mode tuning: sweep the `[M/Kx/L%reg]` space for one workload and show
//! the latency / capacity / refresh-power trade-off, then walk the
//! dynamic mode-change (Table 2) relaxation chain.
//!
//! ```text
//! cargo run -p mcr-dram --example mode_tuning --release
//! ```

use mcr_dram::experiments::Outcome;
use mcr_dram::{McrMode, ModeChangePlan, SweepBuilder, SystemConfig};

fn main() {
    let workload = "comm2";
    let len = 30_000;

    let candidates = [
        (2u32, 2u32, 1.0),
        (4, 4, 1.0),
        (2, 4, 1.0),
        (1, 4, 1.0),
        (4, 4, 0.5),
        (2, 2, 0.5),
        (2, 4, 0.75),
    ];
    // Baseline plus all candidates as one sweep: validated up front and
    // run across the worker pool.
    let mut builder =
        SweepBuilder::new(len).point("baseline", SystemConfig::single_core(workload, len));
    let modes: Vec<McrMode> = candidates
        .iter()
        .map(|&(m, k, reg)| McrMode::new(m, k, reg).expect("valid mode"))
        .collect();
    for (mode, (_, _, reg)) in modes.iter().zip(candidates) {
        builder = builder.point(
            mode.to_string(),
            SystemConfig::single_core(workload, len)
                .with_mode(*mode)
                .with_alloc_ratio(if reg < 1.0 { 0.10 } else { 0.0 }),
        );
    }
    let results = builder.build().expect("tuning configs valid").run();

    let baseline = &results.points[0].report;
    println!(
        "workload {workload}: baseline exec {} CPU cycles, read latency {:.1} mem cycles",
        baseline.exec_cpu_cycles, baseline.avg_read_latency
    );
    println!();
    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>10} {:>12}",
        "mode", "exec red.", "lat red.", "EDP red.", "capacity", "REF skipped"
    );
    for (mode, point) in modes.iter().zip(&results.points[1..]) {
        let o = Outcome::versus(workload, baseline, &point.report);
        println!(
            "{:<18} {:>9.1}% {:>9.1}% {:>7.1}% {:>9.0}% {:>12}",
            mode.to_string(),
            o.exec_reduction,
            o.latency_reduction,
            o.edp_reduction,
            mode.usable_capacity() * 100.0,
            point.report.controller.refresh.skipped,
        );
    }

    println!();
    println!("dynamic mode change (Table 2), 4 GB module:");
    let plan = ModeChangePlan::new(4 << 30);
    let mut mode = McrMode::headline();
    loop {
        let view = plan.os_view(mode);
        println!(
            "  {}: OS sees {} GiB ({} physical-address MSBs masked)",
            mode,
            view.bytes >> 30,
            view.masked_msbs
        );
        match mode.relaxed() {
            Some(next) => {
                assert!(plan.change_is_collision_free(mode, next));
                mode = next;
            }
            None => break,
        }
    }
    println!("  every step of the chain is collision-free: no data is copied.");
}
