//! Mode tuning: sweep the `[M/Kx/L%reg]` space for one workload and show
//! the latency / capacity / refresh-power trade-off, then walk the
//! dynamic mode-change (Table 2) relaxation chain.
//!
//! ```text
//! cargo run -p mcr-dram --example mode_tuning --release
//! ```

use mcr_dram::experiments::Outcome;
use mcr_dram::{McrMode, ModeChangePlan, System, SystemConfig};

fn main() {
    let workload = "comm2";
    let len = 30_000;

    let baseline = System::build(&SystemConfig::single_core(workload, len)).run();
    println!(
        "workload {workload}: baseline exec {} CPU cycles, read latency {:.1} mem cycles",
        baseline.exec_cpu_cycles, baseline.avg_read_latency
    );
    println!();
    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>10} {:>12}",
        "mode", "exec red.", "lat red.", "EDP red.", "capacity", "REF skipped"
    );

    let candidates = [
        (2u32, 2u32, 1.0),
        (4, 4, 1.0),
        (2, 4, 1.0),
        (1, 4, 1.0),
        (4, 4, 0.5),
        (2, 2, 0.5),
        (2, 4, 0.75),
    ];
    for (m, k, reg) in candidates {
        let mode = McrMode::new(m, k, reg).expect("valid mode");
        let r = System::build(
            &SystemConfig::single_core(workload, len)
                .with_mode(mode)
                .with_alloc_ratio(if reg < 1.0 { 0.10 } else { 0.0 }),
        )
        .run();
        let o = Outcome::versus(workload, &baseline, &r);
        println!(
            "{:<18} {:>9.1}% {:>9.1}% {:>7.1}% {:>9.0}% {:>12}",
            mode.to_string(),
            o.exec_reduction,
            o.latency_reduction,
            o.edp_reduction,
            mode.usable_capacity() * 100.0,
            r.controller.refresh.skipped,
        );
    }

    println!();
    println!("dynamic mode change (Table 2), 4 GB module:");
    let plan = ModeChangePlan::new(4 << 30);
    let mut mode = McrMode::headline();
    loop {
        let view = plan.os_view(mode);
        println!(
            "  {}: OS sees {} GiB ({} physical-address MSBs masked)",
            mode,
            view.bytes >> 30,
            view.masked_msbs
        );
        match mode.relaxed() {
            Some(next) => {
                assert!(plan.change_is_collision_free(mode, next));
                mode = next;
            }
            None => break,
        }
    }
    println!("  every step of the chain is collision-free: no data is copied.");
}
