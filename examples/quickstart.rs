//! Quickstart: run one workload on conventional DRAM and on MCR-DRAM's
//! headline mode, and print the paper's three headline metrics.
//!
//! ```text
//! cargo run -p mcr-dram --example quickstart --release
//! ```

use mcr_dram::experiments::Outcome;
use mcr_dram::{ConfigError, McrMode, System, SystemConfig};

fn main() -> Result<(), ConfigError> {
    let workload = "libq";
    let trace_len = 50_000;

    println!("workload: {workload}, {trace_len} memory operations, 4 GB DDR3-1600");

    // Conventional DRAM baseline. `try_build` validates the config and
    // surfaces mistakes as a `ConfigError` instead of a panic.
    let baseline = System::try_build(&SystemConfig::single_core(workload, trace_len))?.run();
    println!(
        "baseline : exec {:>10} CPU cycles | read latency {:>5.1} mem cycles | EDP {:.3e} J*s",
        baseline.exec_cpu_cycles, baseline.avg_read_latency, baseline.edp
    );

    // MCR-DRAM, mode [4/4x/100%reg] — Early-Access, Early-Precharge and
    // Fast-Refresh all active.
    let mode = McrMode::headline();
    let mcr =
        System::try_build(&SystemConfig::single_core(workload, trace_len).with_mode(mode))?.run();
    println!(
        "MCR {mode}: exec {:>10} CPU cycles | read latency {:>5.1} mem cycles | EDP {:.3e} J*s",
        mcr.exec_cpu_cycles, mcr.avg_read_latency, mcr.edp
    );

    let o = Outcome::versus(workload, &baseline, &mcr);
    println!();
    println!(
        "reductions: execution time {:+.1}%, read latency {:+.1}%, EDP {:+.1}%",
        o.exec_reduction, o.latency_reduction, o.edp_reduction
    );
    println!(
        "capacity cost: {:.0}% of DRAM usable in this mode (reconfigurable at runtime)",
        mode.usable_capacity() * 100.0
    );
    Ok(())
}
