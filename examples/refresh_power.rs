//! Refresh power: quantify what Fast-Refresh and Refresh-Skipping do to
//! refresh energy on the 4 GB and 16 GB configurations.
//!
//! ```text
//! cargo run -p mcr-dram --example refresh_power --release
//! ```

use mcr_dram::experiments::reduction_pct;
use mcr_dram::{McrMode, Mechanisms, System, SystemConfig};
use trace_gen::multi_programmed_mixes;

fn main() {
    let len = 25_000;
    println!("== single-core, 4 GB (1 Gb-class tRFC = 110 ns) ==");
    let base = System::try_build(&SystemConfig::single_core("black", len))
        .expect("valid config")
        .run();
    println!(
        "baseline      : {:>7} refreshes, refresh energy {:>10.0} pJ",
        base.controller.refresh.normal, base.energy.refresh_pj
    );
    for (m, k, label) in [
        (4u32, 4u32, "Fast-Refresh only        "),
        (2, 4, "Fast-Refresh + skip half "),
        (1, 4, "Fast-Refresh + skip 3/4  "),
    ] {
        let r = System::try_build(
            &SystemConfig::single_core("black", len)
                .with_mode(McrMode::new(m, k, 1.0).unwrap())
                .with_mechanisms(Mechanisms::all()),
        )
        .expect("valid config")
        .run();
        println!(
            "[{m}/{k}x] {label}: {:>5} fast + {:>5} skipped, energy {:>10.0} pJ ({:+.1}%)",
            r.controller.refresh.fast,
            r.controller.refresh.skipped,
            r.energy.refresh_pj,
            -reduction_pct(base.energy.refresh_pj, r.energy.refresh_pj),
        );
    }

    println!();
    println!("== quad-core, 16 GB (4 Gb-class tRFC = 260 ns) ==");
    let mix = &multi_programmed_mixes(2015)[0];
    let mbase = System::try_build(&SystemConfig::multi_core(mix.cores, len / 4))
        .expect("valid config")
        .run();
    println!(
        "baseline      : {:>7} refreshes, refresh energy {:>10.0} pJ",
        mbase.controller.refresh.normal, mbase.energy.refresh_pj
    );
    for (m, k) in [(4u32, 4u32), (2, 4)] {
        let r = System::try_build(
            &SystemConfig::multi_core(mix.cores, len / 4)
                .with_mode(McrMode::new(m, k, 1.0).unwrap()),
        )
        .expect("valid config")
        .run();
        println!(
            "[{m}/{k}x]        : {:>5} fast + {:>5} skipped, energy {:>10.0} pJ ({:+.1}%)",
            r.controller.refresh.fast,
            r.controller.refresh.skipped,
            r.energy.refresh_pj,
            -reduction_pct(mbase.energy.refresh_pj, r.energy.refresh_pj),
        );
    }
    println!();
    println!("paper's related observation: refresh power of [2/4x/75%reg] is about");
    println!("66.3% of [4/4x/75%reg]'s; skipping matters more as capacity grows.");
}
