//! Cross-backend compare-campaign suite (DESIGN.md §5l).
//!
//! The `compare` campaign races the same trace and seed across every
//! registered DRAM-architecture backend, so it inherits the repo's two
//! standing determinism contracts: worker count never changes results,
//! and a request submitted over the wire is bit-identical to the same
//! campaign executed locally. On top of those, the comparison table for
//! a fixed spec is frozen byte-for-byte in `tests/goldens/` (re-bless
//! with `MCR_BLESS=1`), and the event wheel must stay a pure wall-clock
//! optimization for the non-MCR backends too.

use mcr_dram::{
    registered_backends, BackendKind, BackendSpec, CompareSpec, McrMode, System, SystemConfig,
};
use mcr_serve::{Client, ServeConfig, Server};
use sim_json::Json;
use std::path::{Path, PathBuf};

const LEN: usize = 1_500;

/// Long enough that refresh management diverges between the backends
/// (normal vs fast vs skipped); short runs never cross tREFI.
const GOLDEN_LEN: usize = 20_000;

fn libq_compare(len: usize) -> CompareSpec {
    CompareSpec {
        workload: Some("libq".into()),
        len,
        ..CompareSpec::default()
    }
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(format!("{name}.json"))
}

fn blessing() -> bool {
    std::env::var_os("MCR_BLESS").is_some_and(|v| v == "1")
}

#[test]
fn compare_table_matches_golden() {
    // The full head-to-head table — every registered backend, one fixed
    // workload/len/seed — frozen byte-for-byte. Any drift is a real
    // behaviour change in one of the backend models.
    let spec = libq_compare(GOLDEN_LEN);
    let results = spec.sweep(Some(1)).expect("valid spec").run();
    let rendered = spec.table(&results).to_json();
    let path = golden_path("compare_libq");
    if blessing() {
        std::fs::write(&path, &rendered)
            .unwrap_or_else(|e| panic!("cannot bless {}: {e}", path.display()));
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate with MCR_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "compare table drifted from {}; if intentional, re-bless with \
         MCR_BLESS=1 and review the diff",
        path.display()
    );
}

#[test]
fn worker_count_never_changes_compare_results() {
    // jobs=1 and jobs=8 must agree per backend point — same order, same
    // cache key, byte-identical report — and therefore render the same
    // comparison table.
    let spec = libq_compare(LEN);
    let serial = spec.sweep(Some(1)).expect("valid spec").run();
    let parallel = spec.sweep(Some(8)).expect("valid spec").run();
    assert_eq!(serial.points.len(), registered_backends().len());
    // Requested jobs are clamped to the point count, but stay parallel.
    assert!(parallel.jobs > 1, "jobs: {}", parallel.jobs);
    for (s, p) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(s.label, p.label, "backend order must be preserved");
        assert_eq!(s.key, p.key);
        assert_eq!(
            s.report, p.report,
            "jobs=1 vs jobs=8 diverged at {}",
            s.label
        );
    }
    assert_eq!(
        spec.table(&serial).to_json(),
        spec.table(&parallel).to_json(),
        "rendered tables must not depend on worker count"
    );
}

#[test]
fn every_backend_produces_distinct_cache_keys() {
    // The content-addressed store must never conflate two architectures:
    // each campaign point owns a distinct config key, and the MCR key is
    // the same one a plain (pre-backend) MCR sweep would use.
    let spec = libq_compare(LEN);
    let sweep = spec.sweep(Some(1)).expect("valid spec");
    let mut keys: Vec<u64> = sweep
        .points()
        .iter()
        .map(|p| p.config.config_key())
        .collect();
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(
        keys.len(),
        registered_backends().len(),
        "every backend must hash to its own cache key"
    );
    let plain_mcr = SystemConfig::single_core("libq", LEN)
        .with_mode(McrMode::headline())
        .config_key();
    assert!(
        sweep
            .points()
            .iter()
            .any(|p| p.config.config_key() == plain_mcr),
        "the MCR point must keep its pre-backend cache key"
    );
}

/// Zeroes the volatile (timing/caching) fields of a serialized sweep
/// result, leaving only the deterministic simulation payload.
fn strip_volatile(doc: &mut Json) {
    doc.set("wall_ns", Json::from(0u64));
    doc.set("cache_hits", Json::from(0u64));
    doc.set("jobs", Json::from(0u64));
    if let Json::Obj(members) = doc {
        for (key, value) in members.iter_mut() {
            if key == "points" {
                if let Json::Arr(points) = value {
                    for p in points {
                        p.set("wall_ns", Json::from(0u64));
                        p.set("cache_hit", Json::from(false));
                    }
                }
            }
        }
    }
}

#[test]
fn submitted_and_local_compare_are_bit_identical() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_cap: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");

    // (wire request, the CompareSpec the CLI builds for the same flags)
    let cases: [(&str, CompareSpec); 2] = [
        (
            // Default backend list: every registered architecture.
            r#"{"cmd": "compare", "workload": "libq", "len": 1500}"#,
            libq_compare(LEN),
        ),
        (
            // An explicit subset, out of registry order.
            r#"{"cmd": "compare", "workload": "libq", "len": 1500,
                "backends": ["tldram", "baseline"]}"#,
            CompareSpec {
                backends: vec![
                    BackendSpec::new(BackendKind::TlDram),
                    BackendSpec::new(BackendKind::Baseline),
                ],
                ..libq_compare(LEN)
            },
        ),
    ];
    for (request, spec) in cases {
        let local_json = spec.sweep(Some(1)).expect("local sweep").run().to_json();
        let mut local = Json::parse(&local_json).expect("local results parse");
        let reply = client
            .request(&Json::parse(request).expect("request parses"))
            .expect("request round-trips");
        assert_eq!(
            reply.get("status").and_then(Json::as_str),
            Some("ok"),
            "reply: {reply:?}"
        );
        let mut remote = reply.get("result").cloned().expect("result body");
        strip_volatile(&mut local);
        strip_volatile(&mut remote);
        assert_eq!(
            local, remote,
            "a submitted compare and a local compare must produce \
             identical results ({request})"
        );
        assert_eq!(local.to_string(), remote.to_string());
    }

    client
        .request(&Json::parse(r#"{"cmd": "shutdown"}"#).expect("shutdown parses"))
        .expect("shutdown answered");
    handle.join().expect("server thread");
}

#[test]
fn non_mcr_backends_are_wheel_identical() {
    // The §5h event wheel is a pure wall-clock optimization for every
    // backend, not just MCR: skipping a quiet span under the TL-DRAM
    // segment timings or the CLR-DRAM coupling table must leave the
    // report bit-identical to the dense one-cycle-at-a-time drive.
    for kind in [
        BackendKind::Baseline,
        BackendKind::TlDram,
        BackendKind::ClrDram,
    ] {
        let cfg = SystemConfig::single_core("libq", 8_000).with_backend(BackendSpec::new(kind));
        let wheel = System::build(&cfg).run();
        let mut dense = System::build(&cfg);
        dense.set_skip_ahead(false);
        let dense = dense.run();
        assert_eq!(wheel, dense, "{kind}: wheel and dense reports differ");
    }
}

#[test]
fn compare_cli_rejects_bad_flags_without_panicking() {
    // The `compare` subcommand's typed-error surface: exit code 1 and a
    // one-line `error:` diagnostic, never a panic or a usage dump.
    let bin = env!("CARGO_BIN_EXE_mcr_sim");
    let cases: [(&[&str], &str); 4] = [
        (
            &["compare", "--workload", "libq", "--backends", "bogus"],
            "unknown backend",
        ),
        (&["compare"], "compare needs --workload or --mix"),
        (
            &["compare", "--workload", "libq", "--backends", "mcr,mcr"],
            "duplicate backend",
        ),
        (
            &["compare", "--workload", "libq", "--len"],
            "--len needs a value",
        ),
    ];
    for (args, needle) in cases {
        let out = std::process::Command::new(bin)
            .args(args)
            .output()
            .expect("spawn mcr_sim");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{args:?}: expected exit 1, got {:?} (stderr: {stderr})",
            out.status
        );
        assert!(
            stderr.contains("error:") && stderr.contains(needle),
            "{args:?}: stderr missing {needle:?}: {stderr}"
        );
    }
}
