//! Replays every shipped counterexample script in `tests/counterexamples/`
//! through the independent protocol auditor. A script that stops
//! reproducing its violation class — because the auditor, the timing
//! tables, or the script codec changed — fails here instead of silently
//! shipping a stale counterexample.

use mcr_model::{parse_script, replay_script};
use std::path::PathBuf;

fn scripts_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/counterexamples")
}

fn shipped_scripts() -> Vec<PathBuf> {
    let dir = scripts_dir();
    let entries = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("counterexamples dir {}: {e}", dir.display()));
    let mut paths: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "script"))
        .collect();
    paths.sort();
    paths
}

#[test]
fn every_shipped_counterexample_still_reproduces() {
    let paths = shipped_scripts();
    assert!(
        paths.len() >= 3,
        "expected at least 3 shipped scripts, found {}",
        paths.len()
    );
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let parsed =
            parse_script(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
        let violations =
            replay_script(&parsed).unwrap_or_else(|e| panic!("replay {}: {e}", path.display()));
        assert!(violations > 0, "{}: empty violation set", path.display());
    }
}

#[test]
fn scripts_state_their_expectation_and_are_minimal_enough() {
    for path in shipped_scripts() {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let parsed =
            parse_script(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
        assert!(
            parsed.commands.len() <= 6,
            "{}: {} commands (shipped counterexamples stay minimized)",
            path.display(),
            parsed.commands.len()
        );
    }
}
