//! Fault-tolerance battery for the shard dispatcher: a campaign split
//! across three real server processes survives a SIGKILL of one
//! backend mid-flight with a merged result bit-identical to a
//! single-instance run; a dead backend at startup is failed over; and
//! every [`NetChaos`] fault class (refusal, truncation, garbage,
//! delay, black hole) exercises exactly the retry/hedge/deadline path
//! it is designed to trigger.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use mcr_serve::{
    ChaosPlan, Client, DispatchConfig, DispatchOutcome, Dispatcher, NetChaos, NetFault,
    ServeConfig, Server,
};
use sim_json::Json;

/// Spawns `mcr_sim serve` on an ephemeral port and returns the child,
/// its address, and the (kept-alive) stdout reader.
fn spawn_backend() -> (Child, String, BufReader<std::process::ChildStdout>) {
    let bin = env!("CARGO_BIN_EXE_mcr_sim");
    let mut serve = Command::new(bin)
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let mut reader = BufReader::new(serve.stdout.take().expect("serve stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("listening banner");
    let addr = line
        .split_whitespace()
        .nth(3)
        .expect("address token in banner")
        .to_string();
    (serve, addr, reader)
}

/// Starts an in-process server for the proxy-based tests.
fn start_local() -> (String, std::thread::JoinHandle<mcr_serve::ServeTelemetry>) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            queue_cap: 8,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    (addr, std::thread::spawn(move || server.run()))
}

fn shutdown_local(addr: &str) {
    if let Ok(mut c) = Client::connect(addr) {
        let _ = c.request(&Json::parse(r#"{"cmd": "shutdown"}"#).expect("shutdown json"));
    }
}

fn dispatcher(cfg: DispatchConfig) -> Dispatcher {
    Dispatcher::new(cfg).expect("dispatcher config")
}

fn dispatch_ok(d: &Dispatcher, line: &str) -> DispatchOutcome {
    let out = d.dispatch_line(line).expect("dispatch succeeds");
    assert!(!out.timed_out, "unexpected timeout: {}", out.line);
    let doc = Json::parse(&out.line).expect("merged reply parses");
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("ok"),
        "merged reply: {}",
        out.line
    );
    out
}

/// A single-point request line: with one point there is exactly one
/// shard, so the retry accounting below is deterministic.
const ONE_POINT: &str =
    r#"{"cmd": "sweep", "id": "one", "len": 1200, "workloads": ["libq"], "modes": ["off"]}"#;

/// Zeroes the volatile (timing/caching) fields of a full job reply so
/// distributed and single-instance answers can be compared bit for bit.
fn strip_volatile(doc: &mut Json) {
    doc.set("queue_ms", Json::from(0u64));
    doc.set("service_ms", Json::from(0u64));
    if let Some(result) = doc.get("result") {
        let mut result = result.clone();
        result.set("wall_ns", Json::from(0u64));
        result.set("cache_hits", Json::from(0u64));
        result.set("jobs", Json::from(0u64));
        if let Json::Obj(members) = &mut result {
            for (key, value) in members.iter_mut() {
                if key == "points" {
                    if let Json::Arr(points) = value {
                        for p in points {
                            p.set("wall_ns", Json::from(0u64));
                            p.set("cache_hit", Json::from(false));
                        }
                    }
                }
            }
        }
        doc.set("result", result);
    }
}

#[test]
fn killed_backend_fails_over_and_the_merged_campaign_is_bit_identical() {
    let campaign = r#"{"cmd": "campaign", "id": "dist-1", "workload": "libq",
        "mode": "4/4x/100", "len": 40000, "rates": [0.0, 0.02, 0.05, 0.08, 0.1],
        "fault_seed": 2015}"#;

    let mut backends = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..3 {
        let (child, addr, reader) = spawn_backend();
        backends.push((child, reader));
        addrs.push(addr);
    }

    let d = dispatcher(DispatchConfig {
        backends: addrs.clone(),
        max_retries: 6,
        backoff_base_ms: 25,
        seed: 1,
        ..DispatchConfig::default()
    });
    let dispatch = std::thread::spawn({
        let d_line = campaign.to_string();
        let d = d.clone();
        move || d.dispatch_line(&d_line)
    });

    // SIGKILL the first backend observed with a job in flight: its
    // unanswered shard request must be retried on another backend.
    let mut victim = None;
    'hunt: for _ in 0..4_000 {
        for (i, addr) in addrs.iter().enumerate() {
            let Ok(mut c) = Client::connect(addr.as_str()) else {
                continue;
            };
            let Ok(stats) = c.request(&Json::parse(r#"{"cmd": "stats"}"#).expect("stats json"))
            else {
                continue;
            };
            let in_flight = stats
                .get("stats")
                .and_then(|s| s.get("in_flight"))
                .and_then(Json::as_u64)
                .unwrap_or(0);
            if in_flight >= 1 {
                victim = Some(i);
                break 'hunt;
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let victim = victim.expect("some backend must have a shard in flight");
    backends[victim].0.kill().expect("kill victim backend");
    let _ = backends[victim].0.wait();

    let out = dispatch
        .join()
        .expect("dispatch thread")
        .expect("dispatch survives the kill");
    assert!(!out.timed_out, "campaign must complete: {}", out.line);
    let mut merged = Json::parse(&out.line).expect("merged reply parses");
    assert_eq!(merged.get("status").and_then(Json::as_str), Some("ok"));
    assert!(
        out.telemetry.retries.get() >= 1,
        "the killed shard must have been retried: {:?}",
        out.telemetry
    );
    assert!(
        out.telemetry.failovers.get() >= 1,
        "the retry must have landed on a different backend: {:?}",
        out.telemetry
    );

    // Reference: the identical campaign on a fresh single instance.
    let (mut single, single_addr, _r) = spawn_backend();
    let mut c = Client::connect(single_addr.as_str()).expect("connect single");
    let mut reference = c
        .request(&Json::parse(campaign).expect("campaign json"))
        .expect("single-instance campaign");
    assert_eq!(reference.get("status").and_then(Json::as_str), Some("ok"));
    strip_volatile(&mut merged);
    strip_volatile(&mut reference);
    assert_eq!(
        merged.to_string(),
        reference.to_string(),
        "distributed campaign with a killed backend diverged from single-instance"
    );

    single.kill().expect("kill single");
    let _ = single.wait();
    for (mut child, _) in backends {
        let _ = child.kill();
        let _ = child.wait();
    }
}

#[test]
fn dead_backend_at_start_is_failed_over() {
    // A port that was listening a moment ago and now refuses.
    let dead = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind throwaway");
        l.local_addr().expect("throwaway addr").to_string()
    };
    let (live, handle) = start_local();
    let d = dispatcher(DispatchConfig {
        backends: vec![dead, live.clone()],
        max_retries: 3,
        backoff_base_ms: 10,
        connect_timeout_ms: 500,
        seed: 2,
        ..DispatchConfig::default()
    });
    let out = dispatch_ok(&d, ONE_POINT);
    assert_eq!(out.telemetry.retries.get(), 1, "{:?}", out.telemetry);
    assert_eq!(out.telemetry.failovers.get(), 1, "{:?}", out.telemetry);
    shutdown_local(&live);
    handle.join().expect("server thread");
}

#[test]
fn refusal_truncation_and_garbage_each_cost_exactly_one_retry() {
    let (addr, handle) = start_local();
    for fault in [NetFault::Refuse, NetFault::Truncate(24), NetFault::Garbage] {
        let mut proxy =
            NetChaos::spawn(addr.clone(), ChaosPlan::Scripted(vec![Some(fault.clone())]))
                .expect("spawn proxy");
        let d = dispatcher(DispatchConfig {
            backends: vec![proxy.addr().to_string()],
            max_retries: 2,
            backoff_base_ms: 10,
            connect_timeout_ms: 500,
            seed: 3,
            ..DispatchConfig::default()
        });
        let out = dispatch_ok(&d, ONE_POINT);
        assert_eq!(
            out.telemetry.retries.get(),
            1,
            "{fault:?} must cost exactly one retry: {:?}",
            out.telemetry
        );
        assert_eq!(
            out.telemetry.failovers.get(),
            0,
            "single backend: the retry goes back to it: {:?}",
            out.telemetry
        );
        proxy.shutdown();
        let stats = proxy.stats();
        assert_eq!(stats.faults(), 1, "{fault:?}: {stats:?}");
    }
    shutdown_local(&addr);
    handle.join().expect("server thread");
}

#[test]
fn hedged_dispatch_rescues_a_delayed_backend() {
    let (addr, handle) = start_local();
    // Every connection through the slow proxy stalls for far longer
    // than the hedge trigger; the direct backend answers instead.
    let mut slow = NetChaos::spawn(
        addr.clone(),
        ChaosPlan::Scripted(vec![Some(NetFault::Delay(Duration::from_secs(8))); 8]),
    )
    .expect("spawn slow proxy");
    let d = dispatcher(DispatchConfig {
        backends: vec![slow.addr().to_string(), addr.clone()],
        max_retries: 2,
        hedge_after_ms: Some(200),
        connect_timeout_ms: 500,
        seed: 4,
        ..DispatchConfig::default()
    });
    let out = dispatch_ok(&d, ONE_POINT);
    assert_eq!(out.telemetry.hedges.get(), 1, "{:?}", out.telemetry);
    assert!(
        out.telemetry.failovers.get() >= 1,
        "the hedge ran on the other backend: {:?}",
        out.telemetry
    );
    slow.shutdown();
    shutdown_local(&addr);
    handle.join().expect("server thread");
}

#[test]
fn blackholed_backends_respect_the_deadline() {
    let (addr, handle) = start_local();
    let mut hole = NetChaos::spawn(
        addr.clone(),
        ChaosPlan::Scripted(vec![Some(NetFault::BlackHole); 8]),
    )
    .expect("spawn black-hole proxy");
    let d = dispatcher(DispatchConfig {
        backends: vec![hole.addr().to_string()],
        max_retries: 8,
        connect_timeout_ms: 500,
        deadline_ms: Some(1_200),
        seed: 5,
        ..DispatchConfig::default()
    });
    let started = std::time::Instant::now();
    let out = d.dispatch_line(ONE_POINT).expect("dispatch returns");
    assert!(
        out.timed_out,
        "black hole must end in timeout: {}",
        out.line
    );
    let doc = Json::parse(&out.line).expect("timeout reply parses");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("timeout"));
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "the deadline must cut the wait short, not the attempt budget"
    );
    hole.shutdown();
    shutdown_local(&addr);
    handle.join().expect("server thread");
}

#[test]
fn loadtest_loopback_accounting_balances_under_chaos() {
    let cfg = mcr_serve::LoadtestConfig {
        submissions: 10,
        concurrency: 3,
        seed: 11,
        len: 900,
        chaos_rate: 0.3,
        arrival_jitter_ms: 2,
        ..mcr_serve::LoadtestConfig::default()
    };
    let report = mcr_serve::loadtest::run_loopback(
        &cfg,
        ServeConfig {
            workers: 2,
            queue_cap: 16,
            ..ServeConfig::default()
        },
    )
    .expect("loopback loadtest");
    report.check(&cfg).expect("accounting must balance");
    assert_eq!(report.clean.ok, 10, "clean phase: every submission ok");
    let chaos = report.chaos.as_ref().expect("chaos phase ran");
    assert_eq!(chaos.total(), 10);
    assert_eq!(chaos.failed, 0, "chaos must never lose a submission");
}
