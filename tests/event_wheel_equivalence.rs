//! Event-wheel ⇄ dense-drive equivalence suite.
//!
//! The §5h event wheel is a pure wall-clock optimization: skipping a
//! quiet span must leave every architecturally visible outcome —
//! [`mcr_dram::RunReport`], telemetry histograms, the completion cycle —
//! bit-identical to executing the same span one memory cycle at a time.
//! These tests run the same seeded config under both drives
//! ([`System::set_skip_ahead`] selects the reference dense drive) and
//! compare the full reports with `assert_eq!`. Any drift here is a
//! missing or late wheel edge, never a tolerance question.

use mcr_dram::{FaultPlan, McrMode, RunReport, System, SystemConfig};
use mem_controller::{RowPolicy, SchedulerKind};
use trace_gen::multi_programmed_mixes;

const LEN: usize = 8_000;

fn mode(m: u32, k: u32) -> McrMode {
    McrMode::new(m, k, 1.0).expect("valid Table 1 mode")
}

/// Runs `cfg` under the event wheel and under the dense reference drive;
/// returns both reports for comparison.
fn wheel_and_dense(cfg: &SystemConfig) -> (RunReport, RunReport) {
    let wheel = System::build(cfg).run();
    let mut dense = System::build(cfg);
    dense.set_skip_ahead(false);
    (wheel, dense.run())
}

fn assert_identical(label: &str, cfg: &SystemConfig) {
    let (wheel, dense) = wheel_and_dense(cfg);
    assert_eq!(wheel, dense, "{label}: wheel and dense reports differ");
}

#[test]
fn all_mcr_modes_are_wheel_identical() {
    let cases = [
        ("off", McrMode::off()),
        ("1_2x", mode(1, 2)),
        ("2_2x", mode(2, 2)),
        ("1_4x", mode(1, 4)),
        ("2_4x", mode(2, 4)),
        ("4_4x", mode(4, 4)),
    ];
    for (label, m) in cases {
        let cfg = SystemConfig::single_core("libq", LEN).with_mode(m);
        assert_identical(label, &cfg);
    }
}

#[test]
fn combined_region_config_is_wheel_identical() {
    let cfg = SystemConfig::single_core("libq", LEN)
        .with_combined_regions(4, 0.25, 2, 0.25)
        .with_alloc_ratio(0.20);
    assert_identical("combined_4x25_2x25", &cfg);
}

#[test]
fn fault_campaigns_are_wheel_identical() {
    // Nonzero rates on every fault class: dropped and late refreshes
    // interact directly with the wheel's refresh-deadline edges.
    for seed in [7, 2015] {
        let plan = FaultPlan::chaos(seed, 0.05);
        let cfg = SystemConfig::single_core("mummer", LEN)
            .with_mode(mode(2, 2))
            .with_fault_plan(plan)
            .with_seed(seed);
        assert_identical("chaos campaign", &cfg);
    }
}

#[test]
fn powerdown_thresholds_are_wheel_identical() {
    // Power-down entry/exit is the idle-heaviest path the wheel skips
    // across; the entry threshold and pending-entry retries are edges.
    for threshold in [64, 256, 4096] {
        let cfg = SystemConfig::single_core("libq", LEN)
            .with_mode(mode(1, 2))
            .with_powerdown(threshold);
        assert_identical("powerdown", &cfg);
    }
}

#[test]
fn scheduler_and_row_policy_variants_are_wheel_identical() {
    let fcfs = SystemConfig::single_core("libq", LEN)
        .with_mode(mode(2, 2))
        .with_scheduler(SchedulerKind::Fcfs);
    assert_identical("fcfs", &fcfs);
    let closed = SystemConfig::single_core("libq", LEN)
        .with_mode(mode(2, 2))
        .with_row_policy(RowPolicy::Closed);
    assert_identical("closed-row", &closed);
}

#[test]
fn multi_core_mix_is_wheel_identical() {
    let mixes = multi_programmed_mixes(2015);
    let cfg = SystemConfig::multi_core(mixes[0].cores, 2_000).with_mode(McrMode::headline());
    assert_identical(mixes[0].name, &cfg);
}

#[test]
fn mid_run_mode_change_lands_on_the_same_cycle() {
    // A reconfigure between run_until calls must observe the exact same
    // intermediate state under both drives, and both runs must finish on
    // the same cycle with the same report.
    let cfg = SystemConfig::single_core("libq", LEN).with_mode(mode(4, 4));
    let mut wheel = System::build(&cfg);
    let mut dense = System::build(&cfg);
    dense.set_skip_ahead(false);

    assert_eq!(wheel.run_until(2_500), dense.run_until(2_500));
    assert_eq!(wheel.now(), dense.now(), "mid-run cycle differs");
    assert_eq!(
        wheel.telemetry_snapshot(),
        dense.telemetry_snapshot(),
        "telemetry differs at the reconfigure point"
    );

    // Relax [4/4x] -> [2/2x]: the only legal mode-change direction.
    wheel.reconfigure(mode(2, 2));
    dense.reconfigure(mode(2, 2));

    assert!(wheel.run_until(u64::MAX), "wheel run did not finish");
    assert!(dense.run_until(u64::MAX), "dense run did not finish");
    assert_eq!(wheel.now(), dense.now(), "completion cycle differs");
    assert_eq!(wheel.report(), dense.report(), "post-change reports differ");
}
