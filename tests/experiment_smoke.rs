//! Miniature end-to-end passes over every figure's sweep shape, so the
//! bench harness code paths stay exercised by `cargo test`.

use mcr_dram::experiments::{
    baseline_multi, baseline_single, mean, run_multi, run_single, Outcome,
};
use mcr_dram::{McrMode, Mechanisms};
use trace_gen::multi_programmed_mixes;

const LEN: usize = 3_000;

#[test]
fn fig11_shape_single_core_ratio_sweep() {
    let base = baseline_single("leslie", LEN).unwrap();
    let mut outs = Vec::new();
    for (m, k) in [(2u32, 2u32), (4, 4)] {
        for ratio in [0.25, 0.5, 1.0] {
            let mode = McrMode::new(m, k, ratio).unwrap();
            let r = run_single("leslie", mode, Mechanisms::access_only(), 0.0, LEN).unwrap();
            outs.push(Outcome::versus(format!("{m}/{k}x@{ratio}"), &base, &r));
        }
    }
    assert_eq!(outs.len(), 6);
    assert!(mean(&outs, |o| o.latency_reduction).is_finite());
}

#[test]
fn fig12_shape_allocation_sweep() {
    let base = baseline_single("comm2", LEN).unwrap();
    let mode = McrMode::new(4, 4, 0.5).unwrap();
    for ratio in [0.1, 0.2, 0.3] {
        let r = run_single("comm2", mode, Mechanisms::access_only(), ratio, LEN).unwrap();
        let o = Outcome::versus(format!("alloc {ratio}"), &base, &r);
        assert!(o.exec_reduction.is_finite());
    }
}

#[test]
fn fig13_shape_mode_sweep() {
    let base = baseline_single("mummer", LEN).unwrap();
    for (m, k) in [(4u32, 4u32), (2, 4), (2, 2)] {
        for reg in [0.25, 0.75] {
            let mode = McrMode::new(m, k, reg).unwrap();
            let r = run_single("mummer", mode, Mechanisms::all(), 0.1, LEN).unwrap();
            let o = Outcome::versus(mode.to_string(), &base, &r);
            assert!(o.exec_reduction.is_finite());
        }
    }
}

#[test]
fn fig14_to_16_shape_multi_core() {
    let mix = &multi_programmed_mixes(2015)[1];
    let base = baseline_multi(mix, 700).unwrap();
    let ratio = run_multi(
        mix,
        McrMode::headline(),
        Mechanisms::access_only(),
        0.0,
        700,
    )
    .unwrap();
    let alloc = run_multi(
        mix,
        McrMode::new(4, 4, 0.5).unwrap(),
        Mechanisms::access_only(),
        0.1,
        700,
    )
    .unwrap();
    let modes = run_multi(
        mix,
        McrMode::new(2, 4, 0.75).unwrap(),
        Mechanisms::all(),
        0.1,
        700,
    )
    .unwrap();
    for r in [&ratio, &alloc, &modes] {
        let o = Outcome::versus(mix.name, &base, r);
        assert!(o.exec_reduction.is_finite());
        assert!(r.reads_done > 0);
    }
}

#[test]
fn fig17_shape_mechanism_cases() {
    let base = baseline_single("comm1", LEN).unwrap();
    let mut prev_exists = false;
    for case in 1..=4 {
        let mode = if case == 4 {
            McrMode::new(2, 4, 1.0).unwrap() // skipping needs M < K
        } else {
            McrMode::headline()
        };
        let r = run_single("comm1", mode, Mechanisms::fig17_case(case), 0.0, LEN).unwrap();
        let o = Outcome::versus(format!("case{case}"), &base, &r);
        assert!(o.exec_reduction.is_finite());
        prev_exists = true;
    }
    assert!(prev_exists);
}

#[test]
fn fig18_shape_edp() {
    let base = baseline_single("libq", LEN).unwrap();
    for (m, k) in [(2u32, 2u32), (4, 4), (2, 4)] {
        let mode = McrMode::new(m, k, 1.0).unwrap();
        let r = run_single("libq", mode, Mechanisms::all(), 0.0, LEN).unwrap();
        let o = Outcome::versus(mode.to_string(), &base, &r);
        assert!(o.edp_reduction.is_finite());
    }
}
