//! End-to-end integration tests spanning cpu-model, mem-controller,
//! dram-device, trace-gen, dram-power and the MCR layer.

use mcr_dram::{McrMode, Mechanisms, System, SystemConfig};
use trace_gen::{multi_programmed_mixes, multi_threaded_group, single_core_workloads};

const LEN: usize = 4_000;

#[test]
fn every_single_core_workload_completes_on_baseline() {
    for w in single_core_workloads() {
        let cfg = SystemConfig::single_core(w.name, LEN);
        let r = System::build(&cfg).run();
        assert!(r.reads_done > 0, "{}: no reads completed", w.name);
        assert!(
            r.instructions >= LEN as u64,
            "{}: trace not fully committed",
            w.name
        );
        assert!(r.exec_cpu_cycles > 0, "{}", w.name);
    }
}

#[test]
fn every_single_core_workload_completes_on_headline_mcr() {
    for w in single_core_workloads() {
        let cfg = SystemConfig::single_core(w.name, LEN).with_mode(McrMode::headline());
        let r = System::build(&cfg).run();
        assert!(r.reads_done > 0, "{}: no reads completed", w.name);
    }
}

#[test]
fn all_mixes_complete_multi_core() {
    for mix in multi_programmed_mixes(2015).iter().take(3) {
        let cfg = SystemConfig::multi_core(mix.cores, 1_000).with_mode(McrMode::headline());
        let r = System::build(&cfg).run();
        assert_eq!(r.per_core_cpu_cycles.len(), 4, "{}", mix.name);
        assert!(r.per_core_cpu_cycles.iter().all(|&c| c > 0), "{}", mix.name);
    }
}

#[test]
fn multi_threaded_workloads_run() {
    for mix in multi_threaded_group() {
        let cfg = SystemConfig::multi_core_mix(&mix, 1_000);
        let r = System::build(&cfg).run();
        assert!(r.reads_done > 0, "{}", mix.name);
    }
}

#[test]
fn multi_threaded_workloads_share_their_footprint() {
    // MT threads walk one address space: the memory footprint of four
    // threads is about the size of one thread's, while a 4-program mix
    // touches ~4 disjoint slices. Compare baseline row conflicts instead
    // of raw addresses: sharing shows up as higher per-bank contention on
    // the same rows. Use the direct signal: re-run the MT mix as if it
    // were multi-programmed (private slices) and check that the shared
    // variant has more row-buffer hits from cross-thread locality.
    let mix = &multi_threaded_group()[0]; // MT-fluid
    let shared = System::build(&SystemConfig::multi_core_mix(mix, 2_000)).run();
    let private = System::build(&SystemConfig::multi_core(mix.cores, 2_000)).run();
    assert!(shared.reads_done > 0 && private.reads_done > 0);
    // Same workload intensity either way.
    let total_shared =
        shared.controller.row_hits + shared.controller.row_misses + shared.controller.row_conflicts;
    assert!(total_shared > 0);
    // The shared variant must actually collide in the same rows sometimes:
    // its conflict+hit profile differs from the private-slice variant.
    assert_ne!(
        (shared.controller.row_hits, shared.controller.row_conflicts),
        (
            private.controller.row_hits,
            private.controller.row_conflicts
        ),
        "shared and private address spaces should behave differently"
    );
}

#[test]
fn two_channel_geometry_works_and_spreads_load() {
    use dram_device::Geometry;
    // Double the channels (halving rows/bank keeps capacity at 4 GB).
    let two_chan = Geometry {
        channels: 2,
        rows_per_bank: 16_384,
        ..Geometry::single_core_4gb()
    };
    let mut cfg = SystemConfig::single_core("leslie", 6_000);
    cfg.geometry = two_chan;
    let r2 = System::build(&cfg).run();
    let r1 = System::build(&SystemConfig::single_core("leslie", 6_000)).run();
    assert!(r2.reads_done > 0);
    // Twice the data-bus width: the streaming workload must not be slower.
    assert!(
        r2.exec_cpu_cycles <= r1.exec_cpu_cycles,
        "2-channel {} vs 1-channel {}",
        r2.exec_cpu_cycles,
        r1.exec_cpu_cycles
    );
}

#[test]
fn two_channel_mcr_still_improves() {
    use dram_device::Geometry;
    let two_chan = Geometry {
        channels: 2,
        rows_per_bank: 16_384,
        ..Geometry::single_core_4gb()
    };
    let mut base_cfg = SystemConfig::single_core("mummer", 6_000);
    base_cfg.geometry = two_chan;
    let mcr_cfg = base_cfg.clone().with_mode(McrMode::headline());
    let base = System::build(&base_cfg).run();
    let mcr = System::build(&mcr_cfg).run();
    assert!(
        mcr.avg_read_latency < base.avg_read_latency,
        "MCR {:.2} vs base {:.2} on 2 channels",
        mcr.avg_read_latency,
        base.avg_read_latency
    );
}

#[test]
fn read_count_matches_trace_reads() {
    // The controller must complete exactly the reads the core issued
    // (store-to-load forwards included).
    let cfg = SystemConfig::single_core("libq", 8_000);
    let r = System::build(&cfg).run();
    // libq is 95% reads: expect ~7600.
    assert!(
        (7_000..=8_000).contains(&(r.reads_done as usize)),
        "reads_done {}",
        r.reads_done
    );
}

#[test]
fn energy_components_are_all_populated() {
    let cfg = SystemConfig::single_core("comm1", 6_000);
    let r = System::build(&cfg).run();
    assert!(r.energy.act_pre_pj > 0.0);
    assert!(r.energy.read_pj > 0.0);
    assert!(r.energy.write_pj > 0.0);
    assert!(r.energy.refresh_pj > 0.0, "refresh energy missing");
    assert!(r.energy.background_pj > 0.0);
    assert!(r.edp > 0.0);
}

#[test]
fn seeds_change_results_configs_do_not() {
    let a = System::build(&SystemConfig::single_core("ferret", LEN)).run();
    let b = System::build(&SystemConfig::single_core("ferret", LEN)).run();
    let c = System::build(&SystemConfig::single_core("ferret", LEN).with_seed(99)).run();
    assert_eq!(a.exec_cpu_cycles, b.exec_cpu_cycles);
    assert_ne!(a.exec_cpu_cycles, c.exec_cpu_cycles);
}

#[test]
fn mechanisms_off_equals_baseline_even_in_mcr_mode() {
    // Turning every mechanism off makes an "MCR" run identical in timing
    // to the baseline: the region exists but nothing exploits it.
    let base = System::build(&SystemConfig::single_core("black", LEN)).run();
    let off = System::build(
        &SystemConfig::single_core("black", LEN)
            .with_mode(McrMode::headline())
            .with_mechanisms(Mechanisms::none()),
    )
    .run();
    assert_eq!(base.exec_cpu_cycles, off.exec_cpu_cycles);
    assert_eq!(base.reads_done, off.reads_done);
}

#[test]
fn row_buffer_stats_are_consistent() {
    let cfg = SystemConfig::single_core("libq", 8_000);
    let r = System::build(&cfg).run();
    let c = &r.controller;
    let classified = c.row_hits + c.row_misses + c.row_conflicts;
    // Forwarded reads are never classified; everything else is.
    assert!(classified <= c.reads_done + c.writes_done);
    assert!(classified > 0);
    // libq streams: expect a high hit rate.
    assert!(
        c.row_hit_rate() > 0.5,
        "libq hit rate {:.2}",
        c.row_hit_rate()
    );
}
