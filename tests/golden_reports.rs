//! Golden-report regression suite.
//!
//! Every Table-3 mode (plus one combined-region config) is run with a
//! fixed seed and its scalar outcome — execution time, latency, EDP,
//! refresh counts, telemetry command totals — is compared byte-for-byte
//! against a checked-in JSON snapshot in `tests/goldens/`. Reports are
//! pure functions of the config, so any drift here is a real behaviour
//! change: either a bug or an intentional change that must be blessed.
//!
//! Regenerate the snapshots after an intentional change with
//!
//! ```text
//! MCR_BLESS=1 cargo test -p mcr-dram --test golden_reports
//! ```
//!
//! (or `make bless`), then review the diff like any other code change.
//! The goldens assume the default `telemetry` feature; run this suite
//! with default features.

use mcr_dram::{McrMode, RunReport, System, SystemConfig};
use std::path::{Path, PathBuf};

// Long enough that refresh management (normal, fast, skipped) is
// exercised and frozen in the snapshots; short runs never cross tREFI.
const LEN: usize = 20_000;

/// The six Table-3 modes plus the Sec. 4.4 combined-region config, with
/// stable snapshot names.
fn golden_cases() -> Vec<(&'static str, SystemConfig)> {
    let mode_cases = [
        ("mode_1_1x", McrMode::off()),
        ("mode_1_2x", mode(1, 2)),
        ("mode_2_2x", mode(2, 2)),
        ("mode_1_4x", mode(1, 4)),
        ("mode_2_4x", mode(2, 4)),
        ("mode_4_4x", mode(4, 4)),
    ];
    let mut cases: Vec<(&'static str, SystemConfig)> = mode_cases
        .into_iter()
        .map(|(name, m)| (name, SystemConfig::single_core("libq", LEN).with_mode(m)))
        .collect();
    cases.push((
        "combined_4x25_2x25",
        SystemConfig::single_core("libq", LEN)
            .with_combined_regions(4, 0.25, 2, 0.25)
            .with_alloc_ratio(0.20),
    ));
    cases
}

fn mode(m: u32, k: u32) -> McrMode {
    McrMode::new(m, k, 1.0).expect("valid Table 1 mode")
}

/// The scalar fields frozen in the snapshot. Floats use `{:?}` (shortest
/// round-trip) so the rendering itself cannot drift.
fn snapshot(label: &str, r: &RunReport) -> String {
    let (acts, reads, writes, pres) = r.telemetry.command_totals();
    format!(
        "{{\n  \"label\": \"{label}\",\n  \"exec_cpu_cycles\": {},\n  \"exec_ns\": {:?},\n  \"total_mem_cycles\": {},\n  \"reads_done\": {},\n  \"instructions\": {},\n  \"avg_read_latency\": {:?},\n  \"edp\": {:?},\n  \"energy_total_pj\": {:?},\n  \"refresh_normal\": {},\n  \"refresh_fast\": {},\n  \"refresh_skipped\": {},\n  \"cmd_activates\": {},\n  \"cmd_reads\": {},\n  \"cmd_writes\": {},\n  \"cmd_precharges\": {},\n  \"act_to_data_p95\": {},\n  \"read_latency_p99\": {}\n}}\n",
        r.exec_cpu_cycles,
        r.exec_ns(),
        r.total_mem_cycles,
        r.reads_done,
        r.instructions,
        r.avg_read_latency,
        r.edp,
        r.energy.total_pj(),
        r.controller.refresh.normal,
        r.controller.refresh.fast,
        r.controller.refresh.skipped,
        acts,
        reads,
        writes,
        pres,
        r.telemetry.act_to_data.p95().unwrap_or(0),
        r.telemetry.controller.read_latency.p99().unwrap_or(0),
    )
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/goldens")
        .join(format!("{name}.json"))
}

fn blessing() -> bool {
    std::env::var_os("MCR_BLESS").is_some_and(|v| v == "1")
}

#[test]
fn reports_match_goldens() {
    let mut mismatches = Vec::new();
    for (name, cfg) in golden_cases() {
        let report = System::build(&cfg).run();
        let rendered = snapshot(name, &report);
        let path = golden_path(name);
        if blessing() {
            std::fs::write(&path, &rendered)
                .unwrap_or_else(|e| panic!("cannot bless {}: {e}", path.display()));
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); generate with MCR_BLESS=1 (make bless)",
                path.display()
            )
        });
        if rendered != golden {
            mismatches.push(format!(
                "--- {name}: report drifted from {} ---\ngolden:\n{golden}\ngot:\n{rendered}",
                path.display()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} golden report(s) drifted; if intentional, re-bless with \
         MCR_BLESS=1 (make bless) and review the diff:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn snapshot_rendering_is_deterministic() {
    let (_, cfg) = golden_cases().remove(0);
    let a = snapshot("x", &System::build(&cfg).run());
    let b = snapshot("x", &System::build(&cfg).run());
    assert_eq!(a, b, "same config must render the same snapshot");
}

#[test]
fn zero_rate_fault_plan_does_not_drift_goldens() {
    // The fault-injection subsystem must be invisible to the golden
    // surface when its plan injects nothing: arming an all-zero
    // FaultPlan turns the margin detector on, but every byte of the
    // rendered snapshot must match the plain run's.
    for (name, cfg) in golden_cases() {
        let plain = snapshot(name, &System::build(&cfg).run());
        let armed_cfg = cfg.with_fault_plan(mcr_dram::FaultPlan::new(2015));
        let armed = snapshot(name, &System::build(&armed_cfg).run());
        assert_eq!(
            plain, armed,
            "{name}: an inert fault plan changed the golden snapshot"
        );
    }
}
