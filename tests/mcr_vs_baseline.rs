//! Qualitative reproduction checks: the orderings the paper's figures
//! report must hold at test scale (the benches re-verify them at full
//! scale and print the quantitative tables).

use mcr_dram::experiments::{baseline_single, ratio_point, run_single, Outcome};
use mcr_dram::{McrMode, Mechanisms};

const LEN: usize = 12_000;

/// Memory-intensive workloads where latency effects are clearly visible.
const PROBES: [&str; 3] = ["libq", "leslie", "mummer"];

#[test]
fn mcr_reduces_read_latency_at_full_region() {
    for name in PROBES {
        let (base, mcr) = ratio_point(name, 4, 4, 1.0, LEN).unwrap();
        let o = Outcome::versus(name, &base, &mcr);
        assert!(
            o.latency_reduction > 0.0,
            "{name}: expected latency reduction, got {:+.2}%",
            o.latency_reduction
        );
    }
}

#[test]
fn benefit_grows_with_mcr_ratio() {
    // Fig. 11: performance improves consistently with increasing MCR ratio.
    for name in ["libq", "leslie"] {
        let base = baseline_single(name, LEN).unwrap();
        let lat = |ratio: f64| {
            let mode = McrMode::new(4, 4, ratio).unwrap();
            run_single(name, mode, Mechanisms::access_only(), 0.0, LEN)
                .unwrap()
                .avg_read_latency
        };
        let l25 = lat(0.25);
        let l100 = lat(1.0);
        assert!(
            l100 < l25 + 0.3,
            "{name}: ratio 1.0 ({l100:.2}) should beat ratio 0.25 ({l25:.2})"
        );
        assert!(l100 < base.avg_read_latency);
    }
}

#[test]
fn k4_beats_k2_at_equal_ratio() {
    // Fig. 11/14: mode [4/4x] > mode [2/2x] at the same MCR ratio.
    for name in PROBES {
        let (base, m22) = ratio_point(name, 2, 2, 1.0, LEN).unwrap();
        let (_, m44) = ratio_point(name, 4, 4, 1.0, LEN).unwrap();
        let o22 = Outcome::versus(name, &base, &m22);
        let o44 = Outcome::versus(name, &base, &m44);
        assert!(
            o44.latency_reduction >= o22.latency_reduction - 0.5,
            "{name}: 4/4x {:.2}% vs 2/2x {:.2}%",
            o44.latency_reduction,
            o22.latency_reduction
        );
    }
}

#[test]
fn k2_full_region_beats_k4_half_region() {
    // Paper's capacity observation: mode [2/2x] ratio 1.0 outperforms
    // mode [4/4x] ratio 0.5 despite using less capacity for clones.
    let mut wins = 0;
    for name in PROBES {
        let (_, m22_full) = ratio_point(name, 2, 2, 1.0, LEN).unwrap();
        let (_, m44_half) = ratio_point(name, 4, 4, 0.5, LEN).unwrap();
        if m22_full.avg_read_latency <= m44_half.avg_read_latency + 0.2 {
            wins += 1;
        }
    }
    assert!(
        wins >= 2,
        "2/2x@1.0 should generally beat 4/4x@0.5 ({wins}/3)"
    );
}

#[test]
fn edp_improves_under_headline_mode() {
    // Fig. 18: mode [4/4x/100%reg] improves EDP.
    let mut improved = 0;
    for name in PROBES {
        let base = baseline_single(name, LEN).unwrap();
        let mcr = run_single(name, McrMode::headline(), Mechanisms::all(), 0.0, LEN).unwrap();
        let o = Outcome::versus(name, &base, &mcr);
        if o.edp_reduction > 0.0 {
            improved += 1;
        }
    }
    assert!(
        improved >= 2,
        "EDP should improve for most probes ({improved}/3)"
    );
}

#[test]
fn fast_refresh_and_skipping_reduce_refresh_busy_time() {
    let base = baseline_single("comm1", LEN).unwrap();
    let fr = run_single(
        "comm1",
        McrMode::headline(),
        Mechanisms::fig17_case(3),
        0.0,
        LEN,
    )
    .unwrap();
    let rs = run_single(
        "comm1",
        McrMode::new(2, 4, 1.0).unwrap(),
        Mechanisms::all(),
        0.0,
        LEN,
    )
    .unwrap();
    // Fast-Refresh: fewer busy cycles per refresh; Skipping: fewer refreshes.
    assert!(fr.energy.refresh_pj < base.energy.refresh_pj);
    assert!(
        rs.controller.refresh.skipped > 0,
        "2/4x must skip refresh slots"
    );
    assert!(rs.energy.refresh_pj < fr.energy.refresh_pj);
}

#[test]
fn early_precharge_adds_benefit_over_early_access_alone() {
    // Fig. 17: case 2 (EA+EP) ≥ case 1 (EA only).
    {
        let name = "mummer";
        let base = baseline_single(name, LEN).unwrap();
        let c1 = run_single(
            name,
            McrMode::headline(),
            Mechanisms::fig17_case(1),
            0.0,
            LEN,
        )
        .unwrap();
        let c2 = run_single(
            name,
            McrMode::headline(),
            Mechanisms::fig17_case(2),
            0.0,
            LEN,
        )
        .unwrap();
        let o1 = Outcome::versus(name, &base, &c1);
        let o2 = Outcome::versus(name, &base, &c2);
        assert!(
            o2.exec_reduction >= o1.exec_reduction - 0.3,
            "{name}: EA+EP {:.2}% vs EA {:.2}%",
            o2.exec_reduction,
            o1.exec_reduction
        );
    }
}
