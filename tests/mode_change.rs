//! Dynamic MCR-mode change (paper Sec. 4.4, Table 2): relaxing the mode
//! frees capacity without data movement, and the simulator honors a
//! reconfigured mode.

use mcr_dram::experiments::run_single;
use mcr_dram::{McrGenerator, McrMode, Mechanisms, ModeChangePlan, System, SystemConfig};

#[test]
fn relaxation_chain_grows_capacity_monotonically() {
    let plan = ModeChangePlan::new(4 << 30);
    let mut mode = McrMode::headline();
    let mut last = plan.os_view(mode).bytes;
    while let Some(next) = mode.relaxed() {
        let bytes = plan.os_view(next).bytes;
        assert!(bytes > last, "{next:?} must expose more memory");
        assert!(plan.change_is_collision_free(mode, next));
        last = bytes;
        mode = next;
    }
    assert!(mode.is_off());
    assert_eq!(last, 4 << 30);
}

#[test]
fn mrs_reprogram_switches_generator_behaviour() {
    // Model the MRS sequence: 4x -> 2x -> off on a live generator.
    let mut g = McrGenerator::new(McrMode::headline());
    assert_eq!(g.translate(12).wordlines(), 4);
    g.reprogram(McrMode::new(2, 2, 1.0).unwrap());
    assert_eq!(g.translate(12).wordlines(), 2);
    g.reprogram(McrMode::off());
    assert_eq!(g.translate(12).wordlines(), 1);
}

#[test]
fn relaxed_mode_trades_latency_for_capacity() {
    // 4x offers lower tRCD than 2x; after relaxing for capacity, latency
    // benefit shrinks but must remain non-negative vs baseline.
    let len = 10_000;
    let base = run_single("libq", McrMode::off(), Mechanisms::none(), 0.0, len).unwrap();
    let m44 = run_single("libq", McrMode::headline(), Mechanisms::all(), 0.0, len).unwrap();
    let m22 = run_single(
        "libq",
        McrMode::headline().relaxed().unwrap(),
        Mechanisms::all(),
        0.0,
        len,
    )
    .unwrap();
    assert!(m44.avg_read_latency < base.avg_read_latency);
    assert!(m22.avg_read_latency < base.avg_read_latency);
    assert!(
        m44.avg_read_latency <= m22.avg_read_latency + 0.2,
        "4x {:.2} vs relaxed 2x {:.2}",
        m44.avg_read_latency,
        m22.avg_read_latency
    );
}

#[test]
fn usable_capacity_matches_table2_views() {
    let plan = ModeChangePlan::new(16 << 30);
    for (k, frac) in [(4u32, 0.25), (2, 0.5), (1, 1.0)] {
        let mode = McrMode::new(k, k, 1.0).unwrap();
        let view = plan.os_view(mode);
        assert_eq!(view.bytes as f64, (16u64 << 30) as f64 * frac, "K={k}");
        assert!((mode.usable_capacity() - frac).abs() < 1e-12);
    }
}

#[test]
fn runtime_reconfiguration_mid_run() {
    // Start in [4/4x/100%reg], relax to [2/2x] mid-run, then turn MCR off:
    // the run must complete, and the relaxation chain must be accepted.
    let cfg = SystemConfig::single_core("leslie", 8_000).with_mode(McrMode::headline());
    let mut sys = System::build(&cfg);
    sys.run_until(50_000);
    assert!(!sys.done(), "trace should still be running at 50k cycles");
    sys.reconfigure(McrMode::new(2, 2, 1.0).unwrap());
    sys.run_until(80_000);
    sys.reconfigure(McrMode::off());
    assert!(sys.run_until(100_000_000), "wedged");
    let r = sys.report();
    assert!(r.reads_done > 0);
    assert!(r.exec_cpu_cycles > 0);
}

#[test]
fn reconfiguration_is_audit_clean_and_preserves_telemetry() {
    // Mode changes ride the MRS path while banks may be open; with the
    // protocol auditor armed this must stay free of error-severity
    // violations, and telemetry must carry across the transition instead
    // of resetting (counters are monotone, the MRS itself is counted).
    let cfg = SystemConfig::single_core("leslie", 8_000).with_mode(McrMode::headline());
    let mut sys = System::build(&cfg);
    assert!(
        sys.audit_enabled(),
        "auditor must be armed for this test (debug build / protocol-audit)"
    );
    sys.run_until(50_000);
    let before = sys.telemetry_snapshot();
    assert!(before.controller.sched_cas_read.get() > 0);
    assert_eq!(before.mode_changes, 0);

    sys.reconfigure(McrMode::new(2, 2, 1.0).unwrap());
    let after = sys.telemetry_snapshot();
    assert_eq!(after.mode_changes, 1, "the MRS itself must be counted");
    assert_eq!(
        after.controller.sched_cas_read.get(),
        before.controller.sched_cas_read.get(),
        "reconfigure must not reset or inflate scheduler counters"
    );
    assert_eq!(after.act_to_data.count(), before.act_to_data.count());

    sys.run_until(80_000);
    sys.reconfigure(McrMode::off());
    assert!(sys.run_until(100_000_000), "wedged");
    let end = sys.telemetry_snapshot();
    assert_eq!(end.mode_changes, 2);
    assert!(
        end.controller.sched_cas_read.get() > after.controller.sched_cas_read.get(),
        "telemetry must keep accumulating after the mode changes"
    );

    sys.audit_finish_now();
    let errors: Vec<String> = sys
        .audit_violations()
        .filter(|v| v.class.severity() == dram_device::Severity::Error)
        .map(|v| v.to_string())
        .collect();
    assert!(
        errors.is_empty(),
        "mode changes must not break protocol: {errors:?}"
    );
    let r = sys.report();
    assert_eq!(r.telemetry.mode_changes, 2);
    assert!(r.reads_done > 0);
}

#[test]
fn mode_change_under_fire_stays_audit_clean() {
    // DESIGN.md §5f: an OS-initiated relaxation (MRS) racing an active
    // fault campaign — margin retries in flight, the guardband ladder
    // possibly mid-step — must neither corrupt data (no retention
    // escapes) nor break the command protocol. Detected violations are
    // warning-severity by design; anything error-severity fails here.
    use mcr_dram::FaultPlan;
    let cfg = SystemConfig::single_core("leslie", 8_000)
        .with_mode(McrMode::headline())
        .with_fault_plan(FaultPlan::new(0xF1FE).with_sense_glitches(0.5));
    let mut sys = System::build(&cfg);
    assert!(sys.audit_enabled(), "auditor must be armed for this test");
    sys.run_until(50_000);
    assert!(!sys.done(), "trace should still be running at 50k cycles");
    sys.reconfigure(McrMode::new(2, 2, 1.0).unwrap());
    sys.run_until(80_000);
    sys.reconfigure(McrMode::off());
    assert!(sys.run_until(100_000_000), "wedged");
    let r = sys.report(); // panics on any error-severity audit record
    assert!(r.reads_done > 0);
    assert!(
        r.reliability.retention_retries > 0,
        "the campaign must have been live across the mode changes"
    );
    assert_eq!(r.reliability.retention_escapes, 0);
    assert!(
        r.telemetry.mode_changes >= 2,
        "the two OS relaxations must be counted alongside guardband MRS steps"
    );
}

#[test]
#[should_panic(expected = "not a relaxation")]
fn tightening_reconfiguration_is_rejected() {
    let cfg = SystemConfig::single_core("black", 2_000).with_mode(McrMode::new(2, 2, 1.0).unwrap());
    let mut sys = System::build(&cfg);
    sys.run_until(1_000);
    sys.reconfigure(McrMode::headline()); // 2x -> 4x would collide
}

#[test]
fn reconfigured_run_lands_between_pure_modes() {
    // A run that spends half its time in 4/4x and half in off-mode should
    // land between the two pure runs in read latency.
    let len = 10_000;
    let pure_mcr = run_single("libq", McrMode::headline(), Mechanisms::all(), 0.0, len).unwrap();
    let pure_off = run_single("libq", McrMode::off(), Mechanisms::none(), 0.0, len).unwrap();
    let cfg = SystemConfig::single_core("libq", len).with_mode(McrMode::headline());
    let mut sys = System::build(&cfg);
    // Switch off roughly halfway through the pure-MCR cycle count.
    sys.run_until(pure_mcr.total_mem_cycles / 2);
    sys.reconfigure(McrMode::off());
    assert!(sys.run_until(100_000_000), "wedged");
    let mixed = sys.report();
    let lo = pure_mcr.avg_read_latency.min(pure_off.avg_read_latency);
    let hi = pure_mcr.avg_read_latency.max(pure_off.avg_read_latency);
    assert!(
        mixed.avg_read_latency >= lo - 0.3 && mixed.avg_read_latency <= hi + 0.3,
        "mixed {:.2} outside [{lo:.2}, {hi:.2}]",
        mixed.avg_read_latency
    );
}

#[test]
fn combined_regions_run_end_to_end() {
    // Sec. 4.4 "Combination of 2x and 4x MCR": hottest pages in the 4x
    // tier, moderately hot in 2x. Must complete and beat the baseline.
    let len = 10_000;
    let base = run_single("comm2", McrMode::off(), Mechanisms::none(), 0.0, len).unwrap();
    let cfg = SystemConfig::single_core("comm2", len)
        .with_combined_regions(4, 0.25, 2, 0.25)
        .with_alloc_ratio(0.20);
    let r = System::build(&cfg).run();
    assert!(r.reads_done > 0);
    assert!(
        r.avg_read_latency <= base.avg_read_latency,
        "combined {:.2} vs baseline {:.2}",
        r.avg_read_latency,
        base.avg_read_latency
    );
}

#[test]
fn combination_of_2x_and_4x_is_expressible_per_region() {
    // Sec. 4.4 "Combination of 2x and 4x MCR": hot pages to 4x, cooler to
    // 2x. We express it as two disjoint region layouts whose membership
    // never overlaps when regions partition the sub-array.
    use mcr_dram::McrLayout;
    let l4 = McrLayout::new(McrMode::new(4, 4, 0.25).unwrap()); // top quarter
    let l2 = McrLayout::new(McrMode::new(2, 2, 0.5).unwrap()); // top half
    let mut both = 0;
    let mut only2 = 0;
    for row in 0..512u64 {
        let in4 = l4.is_mcr_row(row);
        let in2 = l2.is_mcr_row(row);
        if in4 {
            assert!(in2, "4x region must nest inside the 2x region");
            both += 1;
        } else if in2 {
            only2 += 1;
        }
    }
    assert_eq!(both, 128);
    assert_eq!(only2, 128);
}
