//! Randomized (seeded, deterministic) tests on the MCR core's invariants
//! — a dependency-free replacement for the former `proptest` suite.

use dram_device::{Geometry, PhysAddr, RefreshCounter, RefreshWiring};
use mcr_dram::{
    McrGenerator, McrMode, McrPolicy, Mechanisms, RegionMap, RowRemapper, SUBARRAY_ROWS,
};
use mem_controller::{AddressMapper, DevicePolicy, PageInterleave, RefreshAction};
use sim_rng::SmallRng;

/// The six valid (M, K) pairs of Table 1.
const MK: [(u32, u32); 6] = [(1, 1), (1, 2), (2, 2), (1, 4), (2, 4), (4, 4)];

fn random_mode(rng: &mut SmallRng) -> McrMode {
    let (m, k) = MK[rng.gen_range(0..MK.len())];
    let l = rng.gen_range(0.05..=1.0);
    McrMode::new(m, k, l).expect("valid")
}

/// The MCR generator always returns an address containing the requested
/// row, with K-aligned base and exactly K wordlines inside the region —
/// one outside.
#[test]
fn generator_covers_requested_row() {
    let mut rng = SmallRng::seed_from_u64(0xF1);
    for _ in 0..300 {
        let mode = random_mode(&mut rng);
        let row = rng.gen_range(0..8192u64);
        let gen = McrGenerator::new(mode);
        let a = gen.translate(row);
        assert!(a.rows().contains(&row), "{a:?} must cover row {row}");
        if gen.detect(row) {
            assert_eq!(a.wordlines(), mode.k());
            assert_eq!(a.rows().len() as u32, mode.k());
            assert_eq!(a.rows()[0] % mode.k() as u64, 0, "base must be K-aligned");
            // Every clone row translates to the same MCR address.
            for r in a.rows() {
                assert_eq!(gen.translate(r), a);
            }
        } else {
            assert_eq!(a.wordlines(), 1);
        }
    }
}

/// Region membership is decided purely by the sub-array-local index:
/// rows 512 apart agree, matching the 1-2 bit MCR detector of Fig. 7.
#[test]
fn region_membership_is_periodic() {
    let mut rng = SmallRng::seed_from_u64(0xF2);
    for _ in 0..300 {
        let mode = random_mode(&mut rng);
        let row = rng.gen_range(0..SUBARRAY_ROWS);
        let map = RegionMap::single(mode);
        let a = map.classify(row).is_some();
        for sub in 1..4u64 {
            assert_eq!(map.classify(row + sub * SUBARRAY_ROWS).is_some(), a);
        }
    }
}

/// Profile-based allocation is always a bank-preserving involution
/// (applying it twice is the identity) and never double-books frames.
#[test]
fn remapper_is_bank_preserving_involution() {
    let mut rng = SmallRng::seed_from_u64(0xF3);
    for _ in 0..60 {
        let mode = random_mode(&mut rng);
        if mode.is_off() {
            continue;
        }
        let n = rng.gen_range(1..128usize);
        let hot: std::collections::BTreeSet<u64> =
            (0..n).map(|_| rng.gen_range(0..4096u64)).collect();
        let g = Geometry::single_core_4gb();
        let mapper = PageInterleave::new(g);
        let hot: Vec<u64> = hot.into_iter().collect();
        let regions = RegionMap::single(mode);
        let rm = RowRemapper::profile_based_regions(&hot, &regions, &mapper, &g);
        let mut targets = std::collections::HashSet::new();
        for frame in hot.iter().chain([0u64, 999, 2048].iter()) {
            let pa = PhysAddr(frame * g.row_bytes());
            let once = rm.remap_phys(pa, &mapper);
            assert_eq!(rm.remap_phys(once, &mapper), pa, "not an involution");
            let before = mapper.decode(pa);
            let after = mapper.decode(once);
            assert_eq!(before.bank, after.bank);
            assert_eq!(before.rank, after.rank);
            assert_eq!(before.channel, after.channel);
        }
        for frame in &hot {
            let after = rm.remap_dram(mapper.decode(PhysAddr(frame * g.row_bytes())));
            assert!(
                targets.insert((after.rank, after.bank, after.row)),
                "two hot rows share a frame"
            );
        }
    }
}

/// Over one full sweep driven by a realistic reversed-wiring counter, the
/// policy issues exactly M/K of the MCR-region slots and every group is
/// refreshed exactly M times.
#[test]
fn skip_fraction_exact_over_sweep() {
    let mut rng = SmallRng::seed_from_u64(0xF4);
    for _ in 0..200 {
        let mode = random_mode(&mut rng);
        if mode.is_off() {
            continue;
        }
        if !((mode.region() * 512.0).round() as u64).is_multiple_of(mode.k() as u64) {
            continue;
        }
        let g = Geometry::tiny(); // 64 rows -> 6-bit counter, fast sweeps
        let mut policy = McrPolicy::for_geometry(mode, Mechanisms::all(), &g);
        let bits = g.row_bits();
        let mut ctr = RefreshCounter::new(bits, RefreshWiring::Reversed);
        let sweep = 1u64 << bits;
        let mut region_slots = 0u64;
        let mut issued = 0u64;
        let mut per_group = std::collections::HashMap::new();
        for _ in 0..sweep {
            let row = ctr.advance();
            match policy.refresh_action(0, row) {
                RefreshAction::Normal => {}
                RefreshAction::Fast(_) => {
                    region_slots += 1;
                    issued += 1;
                    *per_group.entry(row / mode.k() as u64).or_insert(0u64) += 1;
                }
                RefreshAction::Skip => region_slots += 1,
            }
        }
        if region_slots > 0 {
            let expect = region_slots * mode.m() as u64 / mode.k() as u64;
            assert_eq!(
                issued, expect,
                "issued {issued} of {region_slots} region slots"
            );
            for (&gid, &n) in &per_group {
                assert_eq!(n, mode.m() as u64, "group {gid} refreshed {n} times");
            }
        }
    }
}
