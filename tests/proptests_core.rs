//! Property-based tests on the MCR core's invariants.

use dram_device::{Geometry, PhysAddr, RefreshCounter, RefreshWiring};
use mcr_dram::{
    McrGenerator, McrMode, McrPolicy, Mechanisms, RegionMap, RowRemapper, SUBARRAY_ROWS,
};
use mem_controller::{AddressMapper, DevicePolicy, PageInterleave, RefreshAction};
use proptest::prelude::*;

fn mode_strategy() -> impl Strategy<Value = McrMode> {
    prop_oneof![
        Just((1u32, 1u32)),
        Just((1, 2)),
        Just((2, 2)),
        Just((1, 4)),
        Just((2, 4)),
        Just((4, 4)),
    ]
    .prop_flat_map(|(m, k)| {
        (0.05f64..=1.0).prop_map(move |l| McrMode::new(m, k, l).expect("valid"))
    })
}

proptest! {
    /// The MCR generator always returns an address containing the
    /// requested row, with K-aligned base and exactly K wordlines inside
    /// the region — one outside.
    #[test]
    fn generator_covers_requested_row(mode in mode_strategy(), row in 0u64..8192) {
        let gen = McrGenerator::new(mode);
        let a = gen.translate(row);
        prop_assert!(a.rows().contains(&row), "{a:?} must cover row {row}");
        if gen.detect(row) {
            prop_assert_eq!(a.wordlines(), mode.k());
            prop_assert_eq!(a.rows().len() as u32, mode.k());
            prop_assert_eq!(a.rows()[0] % mode.k() as u64, 0, "base must be K-aligned");
            // Every clone row translates to the same MCR address.
            for r in a.rows() {
                prop_assert_eq!(gen.translate(r), a);
            }
        } else {
            prop_assert_eq!(a.wordlines(), 1);
        }
    }

    /// Region membership is decided purely by the sub-array-local index:
    /// rows 512 apart agree, matching the 1-2 bit MCR detector of Fig. 7.
    #[test]
    fn region_membership_is_periodic(mode in mode_strategy(), row in 0u64..SUBARRAY_ROWS) {
        let map = RegionMap::single(mode);
        let a = map.classify(row).is_some();
        for sub in 1..4u64 {
            prop_assert_eq!(map.classify(row + sub * SUBARRAY_ROWS).is_some(), a);
        }
    }

    /// Profile-based allocation is always a bank-preserving involution
    /// (applying it twice is the identity) and never double-books frames.
    #[test]
    fn remapper_is_bank_preserving_involution(
        hot in prop::collection::btree_set(0u64..4096, 1..128),
        mode in mode_strategy(),
    ) {
        prop_assume!(!mode.is_off());
        let g = Geometry::single_core_4gb();
        let mapper = PageInterleave::new(g);
        let hot: Vec<u64> = hot.into_iter().collect();
        let regions = RegionMap::single(mode);
        let rm = RowRemapper::profile_based_regions(&hot, &regions, &mapper, &g);
        let mut targets = std::collections::HashSet::new();
        for frame in hot.iter().chain([0u64, 999, 2048].iter()) {
            let pa = PhysAddr(frame * g.row_bytes());
            let once = rm.remap_phys(pa, &mapper);
            prop_assert_eq!(rm.remap_phys(once, &mapper), pa, "not an involution");
            let before = mapper.decode(pa);
            let after = mapper.decode(once);
            prop_assert_eq!(before.bank, after.bank);
            prop_assert_eq!(before.rank, after.rank);
            prop_assert_eq!(before.channel, after.channel);
        }
        for frame in &hot {
            let after = rm.remap_dram(mapper.decode(PhysAddr(frame * g.row_bytes())));
            prop_assert!(
                targets.insert((after.rank, after.bank, after.row)),
                "two hot rows share a frame"
            );
        }
    }

    /// Over one full sweep driven by a realistic reversed-wiring counter,
    /// the policy issues exactly M/K of the MCR-region slots and every
    /// group is refreshed exactly M times.
    #[test]
    fn skip_fraction_exact_over_sweep(mode in mode_strategy()) {
        prop_assume!(!mode.is_off());
        prop_assume!(((mode.region() * 512.0).round() as u64).is_multiple_of(mode.k() as u64));
        let g = Geometry::tiny(); // 64 rows -> 6-bit counter, fast sweeps
        let mut policy = McrPolicy::for_geometry(mode, Mechanisms::all(), &g);
        let bits = g.row_bits();
        let mut ctr = RefreshCounter::new(bits, RefreshWiring::Reversed);
        let sweep = 1u64 << bits;
        let mut region_slots = 0u64;
        let mut issued = 0u64;
        let mut per_group = std::collections::HashMap::new();
        for _ in 0..sweep {
            let row = ctr.advance();
            match policy.refresh_action(0, row) {
                RefreshAction::Normal => {}
                RefreshAction::Fast(_) => {
                    region_slots += 1;
                    issued += 1;
                    *per_group.entry(row / mode.k() as u64).or_insert(0u64) += 1;
                }
                RefreshAction::Skip => region_slots += 1,
            }
        }
        if region_slots > 0 {
            let expect = region_slots * mode.m() as u64 / mode.k() as u64;
            prop_assert_eq!(issued, expect, "issued {} of {} region slots", issued, region_slots);
            for (&gid, &n) in &per_group {
                prop_assert_eq!(n, mode.m() as u64, "group {} refreshed {} times", gid, n);
            }
        }
    }
}
