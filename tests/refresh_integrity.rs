//! Refresh correctness: every mode keeps every cell above the retention
//! voltage, skipping matches the M/Kx contract, and the refresh-counter
//! wiring delivers the intervals Early-Precharge relies on.

use circuit_model::{CircuitParams, LeakageModel, TimingSolver};
use dram_device::{max_refresh_interval_ms, RefreshWiring};
use mcr_dram::experiments::run_single;
use mcr_dram::{McrMode, Mechanisms};

#[test]
fn all_modes_keep_cells_above_retention_voltage() {
    // For each Table 1 mode: the restore target voltage minus the leakage
    // droop over the worst-case refresh interval (delivered by the
    // reversed wiring) must stay above the data-retention voltage.
    let params = CircuitParams::calibrated();
    let solver = TimingSolver::new(params);
    let leak = LeakageModel::new(params);
    for (m, k) in [(1u32, 1u32), (1, 2), (2, 2), (1, 4), (2, 4), (4, 4)] {
        let mode = McrMode::new(m, k, 1.0).unwrap();
        let target = solver.restore_target_v(m);
        let interval = mode.refresh_interval_ms();
        assert!(
            leak.survives(target, interval),
            "mode {mode}: restore {target:.3} V does not survive {interval} ms"
        );
    }
}

#[test]
fn direct_wiring_would_break_early_precharge() {
    // With K-to-K wiring the worst-case interval for a 2x MCR is 56 ms
    // (not 32 ms), so the 2/2x restore target would be unsafe. This is the
    // paper's motivation for the K-to-N-1-K wiring.
    let params = CircuitParams::calibrated();
    let solver = TimingSolver::new(params);
    let leak = LeakageModel::new(params);
    let worst_direct = max_refresh_interval_ms(15, RefreshWiring::Direct, 2, 64.0);
    let worst_reversed = max_refresh_interval_ms(15, RefreshWiring::Reversed, 2, 64.0);
    let target = solver.restore_target_v(2);
    assert!(worst_direct > worst_reversed);
    assert!(
        !leak.survives(target, worst_direct),
        "direct wiring must be unsafe"
    );
    assert!(leak.survives(target, worst_reversed));
}

#[test]
fn skip_fraction_matches_mode_contract() {
    // Mode M/Kx over L%reg skips (1 - M/K) of the MCR-region slots:
    // skipped / (skipped + issued_to_region) == 1 - M/K, and the region
    // receives L of all slots.
    let len = 20_000;
    let run = |m, k, l: f64| {
        run_single(
            "black",
            McrMode::new(m, k, l).unwrap(),
            Mechanisms::all(),
            0.0,
            len,
        )
        .unwrap()
    };
    // 2/4x, 100% region: half of all slots skipped, the rest fast.
    let r = run(2, 4, 1.0);
    let s = &r.controller.refresh;
    assert!(s.skipped > 0);
    assert_eq!(s.normal, 0, "100% region: no normal refreshes");
    let frac = s.skipped as f64 / (s.skipped + s.fast) as f64;
    assert!(
        (frac - 0.5).abs() < 0.1,
        "2/4x skip fraction {frac} (skipped {}, fast {})",
        s.skipped,
        s.fast
    );

    // 4/4x: nothing skipped, everything fast.
    let r = run(4, 4, 1.0);
    assert_eq!(r.controller.refresh.skipped, 0);
    assert!(r.controller.refresh.fast > 0);

    // 2/4x at 50% region: roughly half the slots are normal-row slots.
    let r = run(2, 4, 0.5);
    let s = &r.controller.refresh;
    let total = s.normal + s.fast + s.skipped;
    let region_frac = (s.fast + s.skipped) as f64 / total as f64;
    assert!(
        (region_frac - 0.5).abs() < 0.15,
        "region slot fraction {region_frac}"
    );
}

#[test]
fn refresh_slots_never_starve_under_load() {
    // Even with a saturating workload, the backlog-forced refresh path
    // must keep refreshes flowing at the JEDEC rate (within postponement).
    let r = run_single("stream", McrMode::off(), Mechanisms::none(), 0.0, 30_000).unwrap();
    let s = &r.controller.refresh;
    // Slots per rank = total_cycles / tREFI; 2 ranks.
    let expected = (r.total_mem_cycles / 6240) * 2;
    let issued = s.normal + s.fast;
    assert!(
        issued + 16 >= expected,
        "issued {issued} refreshes, expected about {expected}"
    );
}

#[test]
fn high_temperature_keeps_every_mode_safe() {
    // At high temperature JEDEC halves the retention window (32 ms, 2x
    // refresh rate). Per-MCR intervals halve along with the sweep, so
    // every mode's restore target keeps the same margin.
    let params = CircuitParams::calibrated_high_temp();
    let solver = TimingSolver::new(params);
    let leak = LeakageModel::new(params);
    for (m, k) in [(1u32, 1u32), (2, 2), (4, 4), (2, 4)] {
        let target = solver.restore_target_v(m);
        let interval = 32.0 / m as f64; // sweep is 32 ms now
        assert!(
            leak.survives(target, interval),
            "mode {m}/{k}x unsafe at high temperature"
        );
    }
    // And the device timing doubles the refresh cadence.
    use dram_device::TimingSet;
    let normal = TimingSet::ddr3_1600(32_768);
    let hot = normal.clone().with_high_temp_refresh();
    assert_eq!(hot.t_refi, normal.t_refi / 2);
}

#[test]
fn baseline_mode_never_fast_refreshes_or_skips() {
    let r = run_single("comm3", McrMode::off(), Mechanisms::all(), 0.0, 10_000).unwrap();
    assert_eq!(r.controller.refresh.fast, 0);
    assert_eq!(r.controller.refresh.skipped, 0);
    assert!(r.controller.refresh.normal > 0);
}
