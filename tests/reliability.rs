//! Retention-fault injection and guardband response, end to end.
//!
//! The seeded [`FaultPlan`] perturbs retention physics underneath a live
//! run; the margin detector must catch every weakened sense, the
//! controller must retry with the full-restore baseline class, and the
//! guardband monitor must walk the degrade ladder (Full → NoSkip →
//! FullRas) instead of letting corrupt data escape. Droop-only failures
//! need ~64 ms of simulated time to develop, so these tests lean on
//! sense glitches, which trip the same margin check on any fast-class
//! ACTIVATE regardless of elapsed interval.

use mcr_dram::{
    DegradeLevel, FaultPlan, GuardbandConfig, McrMode, RunReport, SweepBuilder, System,
    SystemConfig,
};

const LEN: usize = 8_000;

fn mcr_config(len: usize) -> SystemConfig {
    SystemConfig::single_core("libq", len).with_mode(McrMode::headline())
}

fn glitch_storm(seed: u64) -> FaultPlan {
    FaultPlan::new(seed).with_sense_glitches(1.0)
}

#[test]
fn zero_rate_plan_matches_unfaulted_run() {
    // Arming an all-zero plan turns the margin detector on but must not
    // change a single architectural outcome: the checks all pass, no
    // retry fires, and the performance/energy story is bit-identical.
    let clean = System::build(&mcr_config(LEN)).run();
    let armed = System::build(&mcr_config(LEN).with_fault_plan(FaultPlan::new(42))).run();

    assert!(armed.reliability.fault_injection);
    assert_eq!(armed.reliability.fault_seed, 42);
    assert_eq!(armed.reliability.retention_retries, 0);
    assert_eq!(armed.reliability.retention_violations, 0);
    assert_eq!(armed.reliability.retention_escapes, 0);
    #[cfg(feature = "telemetry")]
    assert!(
        armed.reliability.retention_checks > 0,
        "an armed detector must actually evaluate margins"
    );

    assert_eq!(armed.exec_cpu_cycles, clean.exec_cpu_cycles);
    assert_eq!(armed.reads_done, clean.reads_done);
    assert_eq!(armed.avg_read_latency, clean.avg_read_latency);
    assert_eq!(armed.controller, clean.controller);
    assert_eq!(armed.energy, clean.energy);
    assert!(!clean.reliability.fault_injection);
}

#[test]
fn glitch_storm_degrades_gracefully_with_zero_escapes() {
    // Every fast-class ACTIVATE fails its margin check, so the detector
    // retries each one at the full-restore baseline and the guardband
    // ladder steps down. The run must still complete with every read
    // served — slower, never corrupt.
    let clean = System::build(&mcr_config(LEN)).run();

    let cfg = mcr_config(LEN).with_fault_plan(glitch_storm(2015));
    let mut sys = System::build(&cfg);
    assert_eq!(sys.guardband_level(), DegradeLevel::Full);
    assert!(sys.run_until(400_000_000), "faulted run wedged");
    let level = sys.guardband_level();
    let r = sys.report();

    assert!(r.reliability.retention_retries > 0, "detector never fired");
    assert!(
        r.reliability.guardband_degrades >= 1,
        "sustained violations must step the ladder down"
    );
    assert!(r.reliability.guardband_degraded_cycles > 0);
    assert!(
        level > DegradeLevel::Full,
        "storm never quiets, so the run should end degraded"
    );
    assert_eq!(r.reliability.retention_escapes, 0, "corruption escaped");
    assert_eq!(r.reads_done, clean.reads_done, "reads were lost");
    assert!(
        r.exec_cpu_cycles >= clean.exec_cpu_cycles,
        "retries + degraded timing cannot be faster than the clean run \
         ({} vs {})",
        r.exec_cpu_cycles,
        clean.exec_cpu_cycles
    );
    #[cfg(feature = "telemetry")]
    {
        assert_eq!(
            r.reliability.retention_violations,
            r.reliability.retention_retries
        );
        assert!(
            r.telemetry.mode_changes >= r.reliability.guardband_degrades,
            "each ladder step rides the MRS path"
        );
    }
}

#[test]
fn guardband_rearms_after_quiet_window() {
    // A moderate glitch rate produces violation bursts (degrade) with
    // quiet stretches between them; a tightened hysteresis/backoff makes
    // those stretches long enough to win the ladder back (re-arm) within
    // a short trace. Deterministic for a fixed plan seed.
    let pacing = GuardbandConfig {
        window: 25_000,
        threshold: 2,
        hysteresis: 2_000,
        backoff_base: 1_000,
        backoff_cap: 2,
    };
    let cfg = mcr_config(24_000)
        .with_fault_plan(FaultPlan::new(7).with_sense_glitches(0.02))
        .with_guardband(pacing);
    let r = System::build(&cfg).run();
    assert!(r.reliability.guardband_degrades >= 1, "never degraded");
    assert!(
        r.reliability.guardband_rearms >= 1,
        "quiet windows must walk the ladder back up (degrades={}, rearms={})",
        r.reliability.guardband_degrades,
        r.reliability.guardband_rearms
    );
    assert_eq!(r.reliability.retention_escapes, 0);
}

#[test]
fn disarmed_detector_escapes_are_audit_errors() {
    // With the detector fused off, weakened senses proceed and return
    // corrupt data. The protocol auditor must log every one as an
    // error-severity RetentionEscape (which is why this test inspects
    // violations directly instead of calling `report`, which panics on
    // audit errors in debug builds).
    let cfg = mcr_config(LEN).with_fault_plan(
        FaultPlan::new(99)
            .with_sense_glitches(1.0)
            .with_detector(false),
    );
    let mut sys = System::build(&cfg);
    assert!(sys.audit_enabled(), "auditor must be armed for this test");
    assert!(sys.run_until(400_000_000), "wedged");
    sys.audit_finish_now();
    let escapes = sys
        .audit_violations()
        .filter(|v| v.class == dram_device::ViolationClass::RetentionEscape)
        .count();
    assert!(escapes > 0, "disarmed detector produced no escapes");
    assert!(sys
        .audit_violations()
        .filter(|v| v.class == dram_device::ViolationClass::RetentionEscape)
        .all(|v| v.class.severity() == dram_device::Severity::Error));
    #[cfg(feature = "telemetry")]
    {
        // Telemetry counts every escape; the auditor stores at most the
        // first 256 violation records, so it can only lag behind.
        let t = sys.telemetry_snapshot();
        assert!(t.retention_escapes >= escapes as u64);
        assert_eq!(t.retention_violations, 0, "nothing was detected");
    }
    // Dropped without `report()`: the escapes are the expected outcome
    // here, not a test failure.
}

#[test]
fn fault_campaign_is_bit_identical_across_jobs() {
    // The plan's stateless per-query RNG keeps seeded campaigns
    // deterministic, so a sweep must produce byte-identical reports
    // whether it runs serially or on eight workers.
    let rates = [0.0, 0.05, 0.25];
    let build = |jobs: usize| {
        SweepBuilder::new(4_000)
            .fault_campaign(&mcr_config(4_000), &rates, 0xDEAD)
            .jobs(jobs)
            .build()
            .expect("campaign builds")
            .run()
    };
    let serial = build(1);
    let parallel = build(8);
    let a: Vec<&RunReport> = serial.reports();
    let b: Vec<&RunReport> = parallel.reports();
    assert_eq!(a.len(), rates.len());
    assert_eq!(a, b, "jobs=1 and jobs=8 diverged");
    // Rising fault rates must not lose work: every point serves the
    // same reads, only slower.
    let reads: Vec<u64> = a.iter().map(|r| r.reads_done).collect();
    assert!(
        reads.windows(2).all(|w| w[0] == w[1]),
        "reads differ: {reads:?}"
    );
}

#[test]
fn degrade_ladder_is_ordered() {
    assert!(DegradeLevel::Full < DegradeLevel::NoSkip);
    assert!(DegradeLevel::NoSkip < DegradeLevel::FullRas);
}
