//! The Sec. 7 extension: MCR region managed as a hardware row cache.

use mcr_dram::{McrMode, Mechanisms, RowCacheConfig, System, SystemConfig};

const LEN: usize = 10_000;

#[test]
fn cache_mode_runs_and_collects_stats() {
    let cfg = SystemConfig::single_core("comm2", LEN)
        .with_mode(McrMode::new(4, 4, 0.5).unwrap())
        .with_row_cache(RowCacheConfig {
            promote_threshold: 4,
        });
    let r = System::build(&cfg).run();
    let stats = r.cache.expect("cache stats present");
    assert!(stats.promotions > 0, "hot rows should be promoted");
    assert!(stats.hits > 0, "promoted rows should be hit");
    assert!(r.reads_done > 0);
}

#[test]
fn skewed_workload_gets_high_cache_hit_rate() {
    // comm2 is Zipf-skewed: after warm-up most accesses should hit frames.
    let cfg = SystemConfig::single_core("comm2", 20_000)
        .with_mode(McrMode::new(4, 4, 0.5).unwrap())
        .with_row_cache(RowCacheConfig {
            promote_threshold: 2,
        });
    let r = System::build(&cfg).run();
    let s = r.cache.unwrap();
    let hit_rate = s.hits as f64 / (s.hits + s.misses) as f64;
    assert!(hit_rate > 0.4, "cache hit rate {hit_rate:.2} too low");
}

#[test]
fn cache_improves_over_baseline_for_hot_workloads() {
    // The dynamic cache should recover a decent fraction of the static
    // profile-allocation benefit without any OS support.
    let base = System::build(&SystemConfig::single_core("comm2", LEN)).run();
    let cached = System::build(
        &SystemConfig::single_core("comm2", LEN)
            .with_mode(McrMode::new(4, 4, 0.5).unwrap())
            .with_row_cache(RowCacheConfig {
                promote_threshold: 4,
            }),
    )
    .run();
    // Copies add traffic, so require only that latency does not regress
    // materially and some benefit is visible on the hot fraction.
    assert!(
        cached.avg_read_latency < base.avg_read_latency * 1.05,
        "cache {:.2} vs base {:.2}",
        cached.avg_read_latency,
        base.avg_read_latency
    );
}

#[test]
fn uniform_workload_benefits_less_than_skewed() {
    // With no hot set (stream), promotions churn; the directory should
    // still behave (no panic, sane stats) even if the benefit is small.
    let cfg = SystemConfig::single_core("stream", LEN)
        .with_mode(McrMode::new(4, 4, 0.5).unwrap())
        .with_row_cache(RowCacheConfig {
            promote_threshold: 6,
        });
    let r = System::build(&cfg).run();
    let s = r.cache.unwrap();
    assert!(s.misses > 0);
    // Evictions only after frames fill.
    assert!(s.evictions <= s.promotions);
}

#[test]
#[should_panic(expected = "mutually exclusive")]
fn cache_and_static_allocation_conflict() {
    let cfg = SystemConfig::single_core("comm2", 100)
        .with_mode(McrMode::new(4, 4, 0.5).unwrap())
        .with_alloc_ratio(0.1)
        .with_row_cache(RowCacheConfig::default());
    let _ = System::build(&cfg);
}

#[test]
fn mechanisms_off_cache_still_redirects_without_timing_benefit() {
    // With all mechanisms off, redirection happens but MCR rows use
    // baseline timing: the run must still be correct.
    let cfg = SystemConfig::single_core("comm2", LEN)
        .with_mode(McrMode::new(4, 4, 0.5).unwrap())
        .with_mechanisms(Mechanisms::none())
        .with_row_cache(RowCacheConfig {
            promote_threshold: 4,
        });
    let r = System::build(&cfg).run();
    assert!(r.cache.unwrap().promotions > 0);
    assert!(r.reads_done > 0);
}
