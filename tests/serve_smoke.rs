//! Loopback end-to-end tests for the simulation service: a real TCP
//! server on an ephemeral port, exercised through the protocol client
//! and through the `mcr_sim serve`/`submit` CLI.
//!
//! Covers the full service contract: correct sweep results with
//! memoization, deadline expiry (`timeout`), queue-overflow load
//! shedding (429), rejection while draining (503), and a graceful
//! drain in which every accepted job still delivers its response.

use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Command, Stdio};
use std::thread::JoinHandle;
use std::time::Duration;

use mcr_serve::{Client, RunSpec, ServeConfig, ServeTelemetry, Server};
use sim_json::Json;

fn start(cfg: ServeConfig) -> (SocketAddr, JoinHandle<ServeTelemetry>) {
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr();
    (addr, std::thread::spawn(move || server.run()))
}

fn req(client: &mut Client, line: &str) -> Json {
    client
        .request(&Json::parse(line).expect("request is valid JSON"))
        .expect("request round-trips")
}

fn status(v: &Json) -> &str {
    v.get("status").and_then(Json::as_str).unwrap_or("?")
}

/// Polls `stats` until `pred` holds; panics after ~5 s.
fn wait_for_stats(client: &mut Client, what: &str, pred: impl Fn(&Json) -> bool) {
    for _ in 0..1_000 {
        let v = req(client, r#"{"cmd": "stats"}"#);
        let stats = v.get("stats").expect("stats body");
        if pred(stats) {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

fn stat_u64(stats: &Json, key: &str) -> u64 {
    stats.get(key).and_then(Json::as_u64).unwrap_or(u64::MAX)
}

#[test]
fn serves_sweeps_with_memoization_and_drains_cleanly() {
    let (addr, handle) = start(ServeConfig {
        workers: 2,
        queue_cap: 8,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(addr).expect("connect");
    assert_eq!(status(&req(&mut c, r#"{"cmd": "ping"}"#)), "ok");

    let line = r#"{"cmd": "sweep", "id": "grid-1", "len": 1200,
                   "workloads": ["libq"], "modes": ["off", "4/4x/100"]}"#;
    let first = req(&mut c, line);
    assert_eq!(status(&first), "ok", "response: {first:?}");
    assert_eq!(first.get("id").and_then(Json::as_str), Some("grid-1"));
    assert_eq!(first.get("kind").and_then(Json::as_str), Some("sweep"));
    let points = first
        .get("result")
        .and_then(|r| r.get("points"))
        .and_then(Json::as_array)
        .expect("result.points array");
    assert_eq!(points.len(), 2);
    for p in points {
        assert!(
            p.get("reads_done").and_then(Json::as_u64).unwrap_or(0) > 0,
            "every point simulated reads: {p:?}"
        );
    }

    // The identical request again: served entirely from the memo cache.
    let second = req(&mut c, line);
    assert_eq!(status(&second), "ok");
    assert_eq!(
        second
            .get("result")
            .and_then(|r| r.get("cache_hits"))
            .and_then(Json::as_u64),
        Some(2),
        "repeat request must be memoized: {second:?}"
    );

    let bye = req(&mut c, r#"{"cmd": "shutdown"}"#);
    assert_eq!(status(&bye), "ok");
    assert_eq!(bye.get("drained").and_then(Json::as_bool), Some(true));

    let t = handle.join().expect("server thread");
    assert_eq!(t.accepted.get(), 2);
    assert_eq!(t.completed.get(), 2);
    assert_eq!(t.timeouts.get(), 0);
    // The drain closed the listener: nothing accepts connections now.
    assert!(
        Client::connect(addr).is_err(),
        "listener must be closed after drain"
    );
}

#[test]
fn over_deadline_requests_time_out() {
    let (addr, handle) = start(ServeConfig {
        workers: 1,
        queue_cap: 4,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(addr).expect("connect");

    // A deadline no full-length simulation can meet: the RunBudget
    // expires at the first budget-poll boundary inside the run.
    let late = req(
        &mut c,
        r#"{"cmd": "run", "id": "late", "workload": "libq",
            "mode": "4/4x/100", "len": 400000, "deadline_ms": 1}"#,
    );
    assert_eq!(status(&late), "timeout", "response: {late:?}");
    assert_eq!(late.get("id").and_then(Json::as_str), Some("late"));

    // An already-expired deadline short-circuits without simulating.
    let expired = req(
        &mut c,
        r#"{"cmd": "run", "workload": "libq", "len": 5000, "deadline_ms": 0}"#,
    );
    assert_eq!(status(&expired), "timeout");

    req(&mut c, r#"{"cmd": "shutdown"}"#);
    let t = handle.join().expect("server thread");
    assert_eq!(t.timeouts.get(), 2);
    assert_eq!(t.completed.get(), 0);
}

#[test]
fn burst_sheds_load_and_drain_rejects_new_work() {
    let (addr, handle) = start(ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(addr).expect("connect");

    // A occupies the single worker for a while.
    let slow = std::thread::spawn(move || {
        let mut ca = Client::connect(addr).expect("connect A");
        req(
            &mut ca,
            r#"{"cmd": "run", "id": "A", "workload": "libq",
                "mode": "4/4x/100", "len": 80000}"#,
        )
    });
    wait_for_stats(&mut c, "A in flight", |s| stat_u64(s, "in_flight") == 1);

    // B fills the (capacity-1) queue behind A.
    let queued = std::thread::spawn(move || {
        let mut cb = Client::connect(addr).expect("connect B");
        req(
            &mut cb,
            r#"{"cmd": "run", "id": "B", "workload": "libq", "len": 12000}"#,
        )
    });
    wait_for_stats(&mut c, "B queued", |s| stat_u64(s, "queue_depth_now") == 1);

    // C finds the queue full and is shed with the typed 429 reject.
    let shed = req(
        &mut c,
        r#"{"cmd": "run", "id": "C", "workload": "libq", "len": 12000}"#,
    );
    assert_eq!(status(&shed), "rejected", "response: {shed:?}");
    assert_eq!(shed.get("code").and_then(Json::as_u64), Some(429));
    assert_eq!(
        shed.get("reason").and_then(Json::as_str),
        Some("queue-full")
    );

    // Shutdown while A runs and B waits: both must still complete.
    let drainer = std::thread::spawn(move || {
        let mut cd = Client::connect(addr).expect("connect drainer");
        req(&mut cd, r#"{"cmd": "shutdown"}"#)
    });
    wait_for_stats(&mut c, "draining", |s| {
        s.get("draining").and_then(Json::as_bool) == Some(true)
    });

    // New work during the drain is refused with the typed 503 reject.
    let refused = req(
        &mut c,
        r#"{"cmd": "run", "id": "E", "workload": "libq", "len": 12000}"#,
    );
    assert_eq!(status(&refused), "rejected");
    assert_eq!(refused.get("code").and_then(Json::as_u64), Some(503));
    assert_eq!(
        refused.get("reason").and_then(Json::as_str),
        Some("draining")
    );

    // Zero lost responses: A and B complete, the drainer sees the drain.
    let a = slow.join().expect("thread A");
    assert_eq!(status(&a), "ok", "A must survive the drain: {a:?}");
    let b = queued.join().expect("thread B");
    assert_eq!(status(&b), "ok", "B must survive the drain: {b:?}");
    let d = drainer.join().expect("drainer thread");
    assert_eq!(d.get("drained").and_then(Json::as_bool), Some(true));

    let t = handle.join().expect("server thread");
    assert_eq!(t.completed.get(), 2, "A and B completed");
    assert_eq!(t.rejected_queue_full.get(), 1, "C was shed");
    assert_eq!(t.rejected_draining.get(), 1, "E was refused");
    assert_eq!(t.timeouts.get(), 0);
}

#[test]
fn campaign_jobs_report_reliability() {
    let (addr, handle) = start(ServeConfig {
        workers: 2,
        queue_cap: 4,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(addr).expect("connect");
    let reply = req(
        &mut c,
        r#"{"cmd": "campaign", "id": "chaos-lite", "workload": "libq",
            "mode": "2/4x/100", "len": 4000, "rates": [0.0, 0.1],
            "fault_seed": 2015}"#,
    );
    assert_eq!(status(&reply), "ok", "response: {reply:?}");
    let rel = reply
        .get("reliability")
        .and_then(Json::as_array)
        .expect("reliability array");
    assert_eq!(rel.len(), 3, "control + one point per rate");
    for point in rel {
        assert_eq!(
            point.get("escapes").and_then(Json::as_u64),
            Some(0),
            "no retention escapes with the detector armed: {point:?}"
        );
    }
    assert_eq!(reply.get("clean").and_then(Json::as_bool), Some(true));
    req(&mut c, r#"{"cmd": "shutdown"}"#);
    handle.join().expect("server thread");
}

#[test]
fn oversized_requests_are_rejected_before_any_work() {
    let (addr, handle) = start(ServeConfig {
        workers: 1,
        queue_cap: 4,
        max_points: 8,
        max_trace_len: 10_000,
        ..ServeConfig::default()
    });
    let mut c = Client::connect(addr).expect("connect");
    let too_long = req(
        &mut c,
        r#"{"cmd": "run", "workload": "libq", "len": 50000}"#,
    );
    assert_eq!(status(&too_long), "rejected");
    assert_eq!(too_long.get("code").and_then(Json::as_u64), Some(413));
    let too_wide = req(
        &mut c,
        r#"{"cmd": "sweep", "len": 1000, "workloads": ["libq"],
            "modes": ["off"], "seeds": [1,2,3,4,5,6,7,8,9]}"#,
    );
    assert_eq!(status(&too_wide), "rejected");
    assert_eq!(too_wide.get("code").and_then(Json::as_u64), Some(413));
    // Typed errors for a bad request line, not a dropped connection.
    let bad = c
        .request_line("{\"cmd\": \"run\", \"workload\": \"no-such-workload\", \"len\": 1000}")
        .expect("connection survives");
    assert!(bad.contains("unknown workload"), "{bad}");
    req(&mut c, r#"{"cmd": "shutdown"}"#);
    let t = handle.join().expect("server thread");
    assert_eq!(t.rejected_too_large.get(), 2);
    assert_eq!(t.accepted.get(), 0);
}

fn cache_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mcr-serve-smoke-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_cache_survives_server_restart() {
    let dir = cache_dir("restart");
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 8,
        cache_dir: Some(dir.clone()),
        ..ServeConfig::default()
    };
    let line = r#"{"cmd": "run", "id": "warm-1", "workload": "libq",
                   "mode": "4/4x/100", "len": 1500}"#;

    // First server generation: compute and persist both points.
    let (addr, handle) = start(cfg.clone());
    let mut c = Client::connect(addr).expect("connect gen 1");
    let first = req(&mut c, line);
    assert_eq!(status(&first), "ok", "response: {first:?}");
    assert_eq!(
        first
            .get("result")
            .and_then(|r| r.get("cache_hits"))
            .and_then(Json::as_u64),
        Some(0),
        "generation 1 starts cold"
    );
    let stats = req(&mut c, r#"{"cmd": "stats"}"#);
    let store = stats.get("store").expect("store member in stats");
    assert_eq!(store.get("backend").and_then(Json::as_str), Some("disk"));
    assert_eq!(store.get("warm_entries").and_then(Json::as_u64), Some(0));
    assert_eq!(store.get("inserts").and_then(Json::as_u64), Some(2));
    req(&mut c, r#"{"cmd": "shutdown"}"#);
    handle.join().expect("server gen 1");

    // Second generation on the same directory: the cache is announced
    // warm, and resubmitting the identical request is 100% hits.
    let (addr, handle) = start(cfg);
    let mut c = Client::connect(addr).expect("connect gen 2");
    let stats = req(&mut c, r#"{"cmd": "stats"}"#);
    let store = stats.get("store").expect("store member in stats");
    assert_eq!(
        store.get("warm_entries").and_then(Json::as_u64),
        Some(2),
        "restart must announce the inherited entries: {stats:?}"
    );
    let second = req(&mut c, line);
    assert_eq!(status(&second), "ok");
    assert_eq!(
        second
            .get("result")
            .and_then(|r| r.get("cache_hits"))
            .and_then(Json::as_u64),
        Some(2),
        "warm restart must serve every point from the store: {second:?}"
    );
    let stats = req(&mut c, r#"{"cmd": "stats"}"#);
    let store = stats.get("store").expect("store member in stats");
    assert_eq!(
        store.get("hits_disk").and_then(Json::as_u64),
        Some(2),
        "the hits came off disk, not a same-process hot tier: {stats:?}"
    );
    req(&mut c, r#"{"cmd": "shutdown"}"#);
    handle.join().expect("server gen 2");

    // Submitted-vs-local bit-identity is unchanged by the warm store.
    let spec = RunSpec {
        workload: Some("libq".into()),
        mode: mcr_serve::protocol::parse_mode("4/4x/100").expect("mode"),
        len: 1_500,
        ..RunSpec::default()
    };
    let mut local =
        Json::parse(&spec.sweep(Some(1)).expect("local sweep").run().to_json()).expect("parses");
    let mut remote = second.get("result").cloned().expect("result body");
    strip_volatile(&mut local);
    strip_volatile(&mut remote);
    assert_eq!(
        local.to_string(),
        remote.to_string(),
        "warm submitted run diverged from a cold local run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Zeroes the volatile (timing/caching) fields of a serialized sweep
/// result (mirrors `sweep_determinism.rs`).
fn strip_volatile(doc: &mut Json) {
    doc.set("wall_ns", Json::from(0u64));
    doc.set("cache_hits", Json::from(0u64));
    doc.set("jobs", Json::from(0u64));
    if let Json::Obj(members) = doc {
        for (key, value) in members.iter_mut() {
            if key == "points" {
                if let Json::Arr(points) = value {
                    for p in points {
                        p.set("wall_ns", Json::from(0u64));
                        p.set("cache_hit", Json::from(false));
                    }
                }
            }
        }
    }
}

#[test]
fn killed_server_is_restartable_on_its_warm_cache() {
    // The ungraceful path: SIGKILL the serving process outright, then
    // restart on the same --cache-dir. Publishes are durable at point
    // completion, so the second generation still inherits the work.
    let bin = env!("CARGO_BIN_EXE_mcr_sim");
    let dir = cache_dir("kill");
    let dir_s = dir.to_string_lossy().into_owned();
    let spawn_server = || {
        let mut serve = Command::new(bin)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--cache-dir",
                &dir_s,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn serve");
        let mut reader = BufReader::new(serve.stdout.take().expect("serve stdout"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("listening banner");
        let addr = line
            .split_whitespace()
            .nth(3)
            .expect("address token in banner")
            .to_string();
        // Keep the pipe reader alive: dropping it would make the
        // server's final drain message fail with EPIPE.
        (serve, addr, reader)
    };
    let request = r#"{"cmd": "run", "workload": "libq", "mode": "4/4x/100", "len": 1500}"#;

    let (mut serve, addr, _reader1) = spawn_server();
    let mut c = Client::connect(addr.as_str()).expect("connect gen 1");
    let first = req(&mut c, request);
    assert_eq!(status(&first), "ok", "response: {first:?}");
    serve.kill().expect("kill serve");
    let _ = serve.wait();

    let (mut serve, addr, _reader2) = spawn_server();
    let mut c = Client::connect(addr.as_str()).expect("connect gen 2");
    let second = req(&mut c, request);
    assert_eq!(status(&second), "ok");
    assert_eq!(
        second
            .get("result")
            .and_then(|r| r.get("cache_hits"))
            .and_then(Json::as_u64),
        Some(2),
        "killed server's publishes must survive: {second:?}"
    );
    req(&mut c, r#"{"cmd": "shutdown"}"#);
    let code = serve.wait().expect("serve exits");
    assert!(code.success(), "gen 2 must drain cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_serve_and_submit_round_trip() {
    let bin = env!("CARGO_BIN_EXE_mcr_sim");
    let mut serve = Command::new(bin)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--queue-cap",
            "4",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn serve");
    let stdout = serve.stdout.take().expect("serve stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("listening banner");
    // "mcr-serve listening on 127.0.0.1:PORT (...)"
    let addr = line
        .split_whitespace()
        .nth(3)
        .expect("address token in banner")
        .to_string();

    let mut submit = Command::new(bin)
        .args(["submit", "-", "--addr", &addr, "--deadline-ms", "60000"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn submit");
    submit
        .stdin
        .take()
        .expect("submit stdin")
        .write_all(br#"{"cmd": "run", "workload": "libq", "mode": "4/4x/100", "len": 1500}"#)
        .expect("write request");
    let out = submit.wait_with_output().expect("submit finishes");
    assert!(out.status.success(), "submit failed: {out:?}");
    let reply = Json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("reply parses");
    assert_eq!(status(&reply), "ok", "reply: {reply:?}");

    let down = Command::new(bin)
        .args(["submit", "--shutdown", "--addr", &addr])
        .output()
        .expect("shutdown submit");
    assert!(down.status.success(), "shutdown failed: {down:?}");
    let code = serve.wait().expect("serve exits");
    assert!(code.success(), "serve must exit cleanly after drain");
}
