//! Crash-safety battery for the persistent result store: every way a
//! shard file can be damaged mid-publish — truncation, garbage bytes,
//! a zero-length file, a crash between the tmp write and the rename —
//! must degrade to quarantine-plus-recompute, with the recomputed
//! results bit-identical to a cold run. Plus the `mcr_sim cache verify`
//! exit-code contract scripts rely on (0 clean, 2 corruption found,
//! 1 usage error).

use mcr_dram::{McrMode, SweepBuilder, SweepResults};
use mcr_store::ResultStore;
use std::fs;
use std::path::PathBuf;
use std::process::Command;

const LEN: usize = 1_500;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mcr-store-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sweep() -> mcr_dram::Sweep {
    SweepBuilder::new(LEN)
        .workload("libq")
        .mode(McrMode::off())
        .mode(McrMode::headline())
        .jobs(1)
        .build()
        .expect("valid sweep")
}

/// Committed entry files (`shard-*/<16 hex>.json`) under a store dir.
fn entry_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for shard in fs::read_dir(dir).expect("store dir").flatten() {
        if !shard.file_name().to_string_lossy().starts_with("shard-") {
            continue;
        }
        for entry in fs::read_dir(shard.path()).expect("shard dir").flatten() {
            if entry.file_name().to_string_lossy().ends_with(".json") {
                out.push(entry.path());
            }
        }
    }
    out.sort();
    out
}

fn assert_reports_equal(cold: &SweepResults, warm: &SweepResults, context: &str) {
    assert_eq!(cold.points.len(), warm.points.len(), "{context}");
    for (c, w) in cold.points.iter().zip(&warm.points) {
        assert_eq!(c.label, w.label, "{context}");
        assert_eq!(c.key, w.key, "{context}");
        assert_eq!(
            c.report, w.report,
            "{context}: recomputed report diverged at {}",
            c.label
        );
    }
}

#[test]
fn corruption_battery_recomputes_bit_identically() {
    let cold = sweep().run();
    assert_eq!(cold.points.len(), 2);

    // Each corruption mode mangles every committed entry of a freshly
    // populated store; the sweep must silently recompute the lot.
    type Corruptor = fn(&PathBuf);
    let battery: [(&str, Corruptor); 4] = [
        ("truncated", |p| {
            let text = fs::read(p).expect("read entry");
            fs::write(p, &text[..text.len() / 2]).expect("truncate");
        }),
        ("garbage", |p| {
            fs::write(p, b"\x00\xffnot json at all\x07").expect("garbage");
        }),
        ("zero-length", |p| {
            fs::write(p, b"").expect("zero");
        }),
        ("partially-renamed", |p| {
            // A crash between the tmp write and the rename: the full
            // entry exists only under its private tmp name.
            let name = p.file_name().expect("name").to_string_lossy().into_owned();
            let stem = name.strip_suffix(".json").expect("entry name");
            let tmp = p.with_file_name(format!(".{stem}.999-0.tmp"));
            fs::rename(p, tmp).expect("de-rename");
        }),
    ];

    for (mode, corrupt) in battery {
        let dir = tmp_dir(mode);
        {
            let store = ResultStore::open(&dir).expect("open");
            let first = sweep().run_with_store(&store);
            assert_eq!(first.cache_hits(), 0, "{mode}: cold store");
            assert_reports_equal(&cold, &first, mode);
        }
        let entries = entry_files(&dir);
        assert_eq!(entries.len(), 2, "{mode}: both points committed");
        for path in &entries {
            corrupt(path);
        }

        // A fresh process (fresh store, cold hot tier) on the damaged
        // directory: every lookup fails validation, the sweep
        // recomputes, and the results match the cold run bit for bit.
        let store = ResultStore::open(&dir).expect("reopen");
        let again = sweep().run_with_store(&store);
        assert_eq!(again.cache_hits(), 0, "{mode}: damage must not hit");
        assert_reports_equal(&cold, &again, mode);

        let stats = store.stats();
        if mode == "partially-renamed" {
            // Nothing committed was corrupt — the entry simply never
            // landed. The stale tmp is invisible to lookups and
            // reclaimed by gc.
            assert_eq!(stats.quarantined.get(), 0, "{mode}");
            let v = store.verify();
            assert_eq!(v.stale_tmp, 2, "{mode}");
            assert!(store.gc().tmp_removed >= 2, "{mode}");
        } else {
            assert_eq!(stats.quarantined.get(), 2, "{mode}: both quarantined");
        }
        // The recompute re-published; the store is whole again.
        assert!(store.verify().is_clean(), "{mode}: healed after recompute");
        assert_eq!(store.len(), 2, "{mode}");
        let third = sweep().run_with_store(&store);
        assert_eq!(third.cache_hits(), 2, "{mode}: healed store serves hits");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn cache_verify_exit_codes_gate_on_integrity() {
    let bin = env!("CARGO_BIN_EXE_mcr_sim");
    let dir = tmp_dir("verify-cli");
    let dir_s = dir.to_string_lossy().into_owned();

    // Populate the store through the CLI itself.
    let run = Command::new(bin)
        .args([
            "--workload",
            "libq",
            "--len",
            "1200",
            "--cache-dir",
            &dir_s,
            "--json",
        ])
        .output()
        .expect("run mcr_sim");
    assert!(run.status.success(), "populate failed: {run:?}");

    let verify = |expect: i32, context: &str| {
        let out = Command::new(bin)
            .args(["cache", "verify", "--cache-dir", &dir_s])
            .output()
            .expect("cache verify");
        assert_eq!(out.status.code(), Some(expect), "{context}: {out:?}");
    };

    verify(0, "clean store");
    let entries = entry_files(&dir);
    assert_eq!(entries.len(), 2);
    fs::write(&entries[0], b"definitely not an entry").expect("corrupt");
    verify(2, "corruption present");
    // The corrupt entry was quarantined by the scan: a second scan is
    // clean again (one entry short, which is recompute's problem).
    verify(0, "after quarantine");

    let gc = Command::new(bin)
        .args(["cache", "gc", "--cache-dir", &dir_s])
        .output()
        .expect("cache gc");
    assert!(gc.status.success(), "gc failed: {gc:?}");

    // Usage errors exit 1, distinct from the corruption signal.
    for bad in [
        vec!["cache", "--cache-dir", dir_s.as_str()],
        vec!["cache", "defragment", "--cache-dir", dir_s.as_str()],
        vec!["cache", "verify"],
    ] {
        let out = Command::new(bin).args(&bad).output().expect("bad usage");
        assert_eq!(out.status.code(), Some(1), "usage error for {bad:?}");
    }
    let _ = fs::remove_dir_all(&dir);
}
