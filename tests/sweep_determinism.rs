//! The sweep engine's two contracts: worker count never changes results
//! (jobs = 1 and jobs = N are byte-identical, in the same order), and the
//! content-addressed cache turns repeated grids into pure lookups. Plus
//! the `ConfigError` surface of the fallible builder API, and the
//! service-era guard: a request submitted over the wire and the same
//! run executed locally produce bit-identical sweep results.

use mcr_dram::{
    CancelToken, ConfigError, McrMode, Mechanisms, RowCacheConfig, RunBudget, SweepBuilder, System,
    SystemConfig,
};
use mcr_serve::{protocol, Client, RunSpec, ServeConfig, Server};
use mcr_store::ResultStore;
use sim_json::Json;
use std::path::PathBuf;

const LEN: usize = 1_500;

/// A fig-11-shaped grid: three workloads × (baseline + three modes).
fn grid(jobs: usize) -> mcr_dram::Sweep {
    SweepBuilder::new(LEN)
        .workloads(["libq", "comm1", "leslie"])
        .mode(McrMode::off())
        .mode(McrMode::new(2, 2, 1.0).unwrap())
        .mode(McrMode::new(4, 4, 0.5).unwrap())
        .mode(McrMode::headline())
        .mechanisms(Mechanisms::access_only())
        .jobs(jobs)
        .build()
        .expect("valid grid")
}

#[test]
fn parallel_equals_serial() {
    let serial = grid(1).run();
    let parallel = grid(4).run();
    assert_eq!(serial.points.len(), 12);
    assert_eq!(serial.jobs, 1);
    assert_eq!(parallel.jobs, 4);
    for (s, p) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(s.label, p.label, "ordering must be preserved");
        assert_eq!(s.key, p.key);
        assert_eq!(
            s.report, p.report,
            "jobs=1 vs jobs=4 diverged at {}",
            s.label
        );
    }
}

#[test]
fn telemetry_is_bit_identical_across_worker_counts() {
    // The telemetry section rides inside RunReport and must obey the same
    // determinism contract as every other field: jobs=1 and jobs=8 produce
    // byte-identical histograms and counters, per point and merged.
    let serial = grid(1).run();
    let parallel = grid(8).run();
    assert_eq!(parallel.jobs, 8);
    for (s, p) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(
            s.report.telemetry, p.report.telemetry,
            "telemetry diverged between jobs=1 and jobs=8 at {}",
            s.label
        );
        assert!(
            s.report.telemetry.controller.sched_cas_read.get() > 0,
            "telemetry must actually record at {}",
            s.label
        );
    }
    assert_eq!(
        serial.merged_telemetry(),
        parallel.merged_telemetry(),
        "merged telemetry must not depend on worker count"
    );
}

#[test]
fn repeated_run_is_all_cache_hits() {
    let sweep = grid(2);
    let first = sweep.run();
    assert_eq!(first.cache_hits(), 0, "cold cache");
    let second = sweep.run();
    assert_eq!(
        second.cache_hits(),
        second.points.len(),
        "warm cache must serve every point"
    );
    for (a, b) in first.points.iter().zip(&second.points) {
        assert_eq!(a.report, b.report);
    }
}

#[test]
fn point_order_matches_declaration_order() {
    let sweep = grid(1);
    let labels: Vec<&str> = sweep.points().iter().map(|p| p.label.as_str()).collect();
    // Workload-major, modes in insertion order, baseline (off) first.
    assert!(labels[0].starts_with("libq [off]"));
    assert!(labels[1].starts_with("libq [2/2x"));
    assert!(labels[3].starts_with("libq [4/4x/100%"));
    assert!(labels[4].starts_with("comm1 [off]"));
    assert!(labels[8].starts_with("leslie [off]"));
}

#[test]
fn config_key_is_stable_and_discriminating() {
    let a = SystemConfig::single_core("libq", LEN).with_mode(McrMode::headline());
    let b = SystemConfig::single_core("libq", LEN).with_mode(McrMode::headline());
    assert_eq!(a, b);
    assert_eq!(a.config_key(), b.config_key(), "equal configs, equal keys");
    // The knobs the cache must distinguish.
    assert_ne!(a.config_key(), b.clone().with_seed(7).config_key());
    assert_ne!(a.config_key(), b.clone().with_alloc_ratio(0.1).config_key());
    assert_ne!(
        a.config_key(),
        b.clone().with_mechanisms(Mechanisms::none()).config_key()
    );
    assert_ne!(
        a.config_key(),
        b.with_mode(McrMode::new(2, 2, 1.0).unwrap()).config_key()
    );
}

#[test]
fn try_build_rejects_mode_with_region_map() {
    let cfg = SystemConfig::single_core("libq", LEN)
        .with_combined_regions(2, 0.25, 1, 0.25)
        .with_mode(McrMode::headline());
    match System::try_build(&cfg) {
        Err(ConfigError::ModeWithRegionMap { mode }) => assert_eq!(mode, McrMode::headline()),
        other => panic!("expected ModeWithRegionMap, got {other:?}"),
    }
}

#[test]
fn try_build_rejects_each_invalid_config() {
    let ok = SystemConfig::single_core("libq", LEN);
    assert!(System::try_build(&ok).is_ok());

    let mut empty = ok.clone();
    empty.workloads.clear();
    assert!(matches!(
        System::try_build(&empty),
        Err(ConfigError::EmptyWorkloads)
    ));

    let mut no_trace = ok.clone();
    no_trace.trace_len = 0;
    assert!(matches!(
        System::try_build(&no_trace),
        Err(ConfigError::EmptyTrace)
    ));

    for bad in [-0.1, 1.5, f64::NAN] {
        assert!(matches!(
            System::try_build(&ok.clone().with_alloc_ratio(bad)),
            Err(ConfigError::AllocRatioRange(_))
        ));
    }

    let conflict = ok
        .with_mode(McrMode::headline())
        .with_alloc_ratio(0.2)
        .with_row_cache(RowCacheConfig::default());
    assert!(matches!(
        System::try_build(&conflict),
        Err(ConfigError::AllocWithRowCache)
    ));
}

/// Zeroes the volatile (timing/caching) fields of a serialized sweep
/// result, leaving only the deterministic simulation payload.
fn strip_volatile(doc: &mut Json) {
    doc.set("wall_ns", Json::from(0u64));
    doc.set("cache_hits", Json::from(0u64));
    doc.set("jobs", Json::from(0u64));
    if let Json::Obj(members) = doc {
        for (key, value) in members.iter_mut() {
            if key == "points" {
                if let Json::Arr(points) = value {
                    for p in points {
                        p.set("wall_ns", Json::from(0u64));
                        p.set("cache_hit", Json::from(false));
                    }
                }
            }
        }
    }
}

#[test]
fn submitted_and_local_runs_are_bit_identical() {
    // The exact request the CLI would send with:
    //   mcr_sim submit - <<< '{"cmd":"run","workload":"libq",...}'
    let request = r#"{"cmd": "run", "workload": "libq", "mode": "4/4x/100", "len": 1500}"#;
    // ... and the RunSpec the CLI builds locally for the same flags.
    let spec = RunSpec {
        workload: Some("libq".into()),
        mode: protocol::parse_mode("4/4x/100").expect("headline mode"),
        len: 1_500,
        ..RunSpec::default()
    };
    let local_json = spec.sweep(Some(1)).expect("local sweep").run().to_json();
    let mut local = Json::parse(&local_json).expect("local results parse");

    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            queue_cap: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr).expect("connect");
    let reply = client
        .request(&Json::parse(request).expect("request parses"))
        .expect("request round-trips");
    assert_eq!(
        reply.get("status").and_then(Json::as_str),
        Some("ok"),
        "reply: {reply:?}"
    );
    let mut remote = reply.get("result").cloned().expect("result body");
    client
        .request(&Json::parse(r#"{"cmd": "shutdown"}"#).expect("shutdown parses"))
        .expect("shutdown answered");
    handle.join().expect("server thread");

    strip_volatile(&mut local);
    strip_volatile(&mut remote);
    assert_eq!(
        local, remote,
        "a submitted run and a local run must produce identical results"
    );
    // Bit-identical all the way down to the serialized bytes.
    assert_eq!(local.to_string(), remote.to_string());
}

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mcr-sweep-determinism-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A second, smaller grid whose keyset is a strict subset of [`grid`]'s
/// (same workloads and modes, fewer of each), so concurrent sweeps
/// genuinely contend for the same store entries.
fn small_grid(jobs: usize) -> mcr_dram::Sweep {
    SweepBuilder::new(LEN)
        .workloads(["libq", "comm1"])
        .mode(McrMode::off())
        .mode(McrMode::headline())
        .mechanisms(Mechanisms::access_only())
        .jobs(jobs)
        .build()
        .expect("valid grid")
}

#[test]
fn concurrent_sweeps_share_one_persistent_store() {
    // Eight threads hammer one disk-backed store with two different
    // sweeps (overlapping keysets, work-stealing workers inside each).
    // Every thread must come back bit-identical to the jobs=1 cold
    // reference of its sweep, no matter who computed or who hit.
    let cold_big = grid(1).run();
    let cold_small = small_grid(1).run();
    let dir = store_dir("threads");
    let store = ResultStore::open(&dir).expect("open store");
    std::thread::scope(|scope| {
        for t in 0..8 {
            let store = &store;
            let (cold, mine): (_, fn(usize) -> mcr_dram::Sweep) = if t % 2 == 0 {
                (&cold_big, grid)
            } else {
                (&cold_small, small_grid)
            };
            scope.spawn(move || {
                let results = mine(2).run_with_store(store);
                assert_eq!(results.points.len(), cold.points.len());
                for (c, r) in cold.points.iter().zip(&results.points) {
                    assert_eq!(c.label, r.label, "thread {t}: order preserved");
                    assert_eq!(
                        c.report, r.report,
                        "thread {t}: shared-store run diverged at {}",
                        c.label
                    );
                }
            });
        }
    });
    // Exactly the union of both keysets was committed (the small grid
    // is a subset of the big one), and a final cold-process pass is
    // served entirely from disk.
    assert_eq!(store.len(), 12, "the union of both keysets, exactly once");
    let fresh = ResultStore::open(&dir).expect("reopen");
    let warm = grid(1).run_with_store(&fresh);
    assert_eq!(warm.cache_hits(), warm.points.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn spawned_processes_share_one_cache_dir() {
    // Two real `mcr_sim` processes race on one --cache-dir; each must
    // emit results bit-identical to an in-process jobs=1 cold run.
    let spec = RunSpec {
        workload: Some("libq".into()),
        mode: protocol::parse_mode("4/4x/100").expect("headline mode"),
        len: LEN,
        ..RunSpec::default()
    };
    let mut local = Json::parse(&spec.sweep(Some(1)).expect("local sweep").run().to_json())
        .expect("local results parse");
    strip_volatile(&mut local);

    let bin = env!("CARGO_BIN_EXE_mcr_sim");
    let dir = store_dir("procs");
    let dir_s = dir.to_string_lossy().into_owned();
    let spawn = || {
        std::process::Command::new(bin)
            .args([
                "--workload",
                "libq",
                "--mode",
                "4/4x/100",
                "--len",
                &LEN.to_string(),
                "--jobs",
                "2",
                "--cache-dir",
                &dir_s,
                "--json",
            ])
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn mcr_sim")
    };
    let (a, b) = (spawn(), spawn());
    for (tag, child) in [("first", a), ("second", b)] {
        let out = child.wait_with_output().expect("mcr_sim exits");
        assert!(out.status.success(), "{tag} process failed: {out:?}");
        let mut doc =
            Json::parse(String::from_utf8_lossy(&out.stdout).trim()).expect("output parses");
        strip_volatile(&mut doc);
        assert_eq!(
            doc.to_string(),
            local.to_string(),
            "{tag} process diverged from the local cold run"
        );
    }
    let store = ResultStore::open(&dir).expect("open store");
    assert_eq!(store.len(), 2, "baseline + MCR point committed");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_expiry_still_publishes_completed_points() {
    // Regression: points that finish before the budget expires must
    // already be in the store when `run_budgeted` gives up — a cancelled
    // sweep may cost the un-run tail, never completed work.
    let dir = store_dir("budget");
    let store = ResultStore::open(&dir).expect("open store");
    let cancel = CancelToken::new();
    let budget = RunBudget::unbounded().with_cancel(cancel.clone());
    let published_at_cancel = std::thread::scope(|scope| {
        let watcher = {
            let store = &store;
            let cancel = cancel.clone();
            scope.spawn(move || {
                // Cancel as soon as the first point is durably on disk.
                for _ in 0..4_000 {
                    let n = store.len();
                    if n >= 1 {
                        cancel.cancel();
                        return n;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                cancel.cancel();
                0
            })
        };
        let outcome = grid(2).run_budgeted(&store, &budget);
        let seen = watcher.join().expect("watcher thread");
        assert!(seen >= 1, "a point must have been published before cancel");
        if let Some(results) = &outcome {
            // The cancel raced the final point: then ALL points must be
            // in the store, not just the one the watcher saw.
            assert_eq!(results.points.len(), 12);
        }
        seen
    });
    let published = store.len();
    assert!(
        published >= published_at_cancel,
        "publishes never roll back"
    );
    // Whatever was published is bit-identical to a cold run, and a
    // warm retry serves it straight from disk.
    let cold = grid(1).run();
    let retry = grid(1).run_with_store(&store);
    assert!(retry.cache_hits() >= usize::try_from(published).unwrap_or(usize::MAX));
    for (c, r) in cold.points.iter().zip(&retry.points) {
        assert_eq!(
            c.report, r.report,
            "published point diverged at {}",
            c.label
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn config_errors_display_cleanly() {
    let errors: Vec<ConfigError> = vec![
        ConfigError::EmptyWorkloads,
        ConfigError::EmptyTrace,
        ConfigError::AllocRatioRange(1.5),
        ConfigError::AllocWithRowCache,
        ConfigError::ModeWithRegionMap {
            mode: McrMode::headline(),
        },
    ];
    for e in errors {
        let msg = e.to_string();
        assert!(!msg.is_empty());
        assert!(msg.is_ascii(), "keep messages terminal-safe: {msg}");
        // std::error::Error is implemented (usable with `?` and dyn Error).
        let _: &dyn std::error::Error = &e;
    }
}
